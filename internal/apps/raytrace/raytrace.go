// Package raytrace implements the Raytrace application (Table 1: the
// "car" scene in the paper; substituted here by a deterministic
// procedural sphere scene, since the original model file is not
// available — the substitution preserves the behaviour that matters: a
// read-shared scene accessed irregularly per ray, tile task queues with
// stealing, and a very large number of fine-grained reads that make
// protocol handler cost a large fraction of data wait time, as Table 4
// reports).
package raytrace

import (
	"fmt"
	"math"
	"math/rand"

	"swsm/internal/apps"
	"swsm/internal/core"
)

const (
	flopCycles = 2
	tile       = 8 // tile edge in pixels
	sphBytes   = 64
)

// Raytrace is one instance.
type Raytrace struct {
	w, h     int
	nSpheres int

	spheres int64    // sphere records: cx cy cz r, cr cg cb, pad
	img     apps.U32 // packed RGB
	queue   *apps.TaskQueue
	scene   []sphere
	procs   int
}

type sphere struct {
	cx, cy, cz, r float64
	cr, cg, cb    float64
}

// New builds the app at a scale.
func New(s apps.Scale) apps.Instance {
	w, h, ns := 96, 96, 48
	switch s {
	case apps.Tiny:
		w, h, ns = 24, 24, 12
	case apps.Large:
		w, h, ns = 192, 192, 64
	}
	return &Raytrace{w: w, h: h, nSpheres: ns}
}

// Name implements apps.Instance.
func (r *Raytrace) Name() string { return "raytrace" }

// MemBytes implements apps.Instance.
func (r *Raytrace) MemBytes() int64 {
	return int64(r.nSpheres)*sphBytes + int64(r.w*r.h)*4 + 4<<20
}

// SCBlock implements apps.Instance.
func (r *Raytrace) SCBlock() int { return 64 }

// Restructured implements apps.Instance.
func (r *Raytrace) Restructured() bool { return false }

func (r *Raytrace) sphAddr(i int, f int64) int64 { return r.spheres + int64(i)*sphBytes + f }

// makeScene generates the deterministic procedural sphere field.
func makeScene(n int) []sphere {
	rng := rand.New(rand.NewSource(99))
	scene := make([]sphere, n)
	for i := range scene {
		scene[i] = sphere{
			cx: rng.Float64()*4 - 2,
			cy: rng.Float64()*4 - 2,
			cz: rng.Float64()*3 + 3,
			r:  0.2 + rng.Float64()*0.5,
			cr: rng.Float64(), cg: rng.Float64(), cb: rng.Float64(),
		}
	}
	return scene
}

// Setup builds the procedural scene and seeds the tile queues.
func (r *Raytrace) Setup(m *core.Machine) {
	r.procs = m.Cfg.Procs
	r.spheres = m.AllocPage(int64(r.nSpheres) * sphBytes)
	r.img = apps.U32{Base: m.AllocPage(int64(r.w*r.h) * 4)}

	r.scene = makeScene(r.nSpheres)
	for i := range r.scene {
		s := r.scene[i]
		m.InitF64(r.sphAddr(i, 0), s.cx)
		m.InitF64(r.sphAddr(i, 8), s.cy)
		m.InitF64(r.sphAddr(i, 16), s.cz)
		m.InitF64(r.sphAddr(i, 24), s.r)
		m.InitF64(r.sphAddr(i, 32), s.cr)
		m.InitF64(r.sphAddr(i, 40), s.cg)
		m.InitF64(r.sphAddr(i, 48), s.cb)
	}

	// Tiles round-robin across processor queues (SPLASH-2 style).
	tx, ty := (r.w+tile-1)/tile, (r.h+tile-1)/tile
	nTasks := tx * ty
	perProc := make([][]int32, r.procs)
	for task := 0; task < nTasks; task++ {
		p := task % r.procs
		perProc[p] = append(perProc[p], int32(task))
	}
	r.queue = apps.NewTaskQueue(m, r.procs, nTasks, 200)
	for p := 0; p < r.procs; p++ {
		r.queue.Fill(m, p, perProc[p])
	}
}

// Run consumes tiles until the queues drain.
func (r *Raytrace) Run(t *core.Thread) {
	me := t.Proc()
	tx := (r.w + tile - 1) / tile
	for {
		task, ok := r.queue.Next(t, me)
		if !ok {
			break
		}
		bx, by := int(task)%tx*tile, int(task)/tx*tile
		for y := by; y < by+tile && y < r.h; y++ {
			for x := bx; x < bx+tile && x < r.w; x++ {
				c := r.tracePixel(t, x, y)
				r.img.Set(t, y*r.w+x, c)
			}
		}
	}
	t.Barrier(0)
}

// tracePixel shoots a primary ray and, on a hit, a shadow ray.  Sphere
// data is loaded through the protocol (read-shared, irregular).
func (r *Raytrace) tracePixel(t *core.Thread, x, y int) uint32 {
	ox, oy, oz := 0.0, 0.0, 0.0
	dx := (float64(x)+0.5)/float64(r.w)*2 - 1
	dy := (float64(y)+0.5)/float64(r.h)*2 - 1
	dz := 1.5
	inv := 1 / math.Sqrt(dx*dx+dy*dy+dz*dz)
	dx, dy, dz = dx*inv, dy*inv, dz*inv

	best, bestI := math.Inf(1), -1
	for i := 0; i < r.nSpheres; i++ {
		d := r.intersect(t, i, ox, oy, oz, dx, dy, dz)
		if d > 0 && d < best {
			best, bestI = d, i
		}
	}
	t.Compute(int64(r.nSpheres) * 12 * flopCycles)
	if bestI < 0 {
		return pack(0.1, 0.1, 0.2) // background
	}
	// Shade: Lambert against a fixed light, with a shadow pass.
	px, py, pz := ox+dx*best, oy+dy*best, oz+dz*best
	scx := t.LoadF64(r.sphAddr(bestI, 0))
	scy := t.LoadF64(r.sphAddr(bestI, 8))
	scz := t.LoadF64(r.sphAddr(bestI, 16))
	rad := t.LoadF64(r.sphAddr(bestI, 24))
	nx, ny, nz := (px-scx)/rad, (py-scy)/rad, (pz-scz)/rad
	lx, ly, lz := -0.5, -0.8, -0.3
	linv := 1 / math.Sqrt(lx*lx+ly*ly+lz*lz)
	lx, ly, lz = lx*linv, ly*linv, lz*linv
	lambert := -(nx*lx + ny*ly + nz*lz)
	if lambert < 0 {
		lambert = 0
	}
	// Shadow ray toward the light.
	if lambert > 0 {
		for i := 0; i < r.nSpheres; i++ {
			if i == bestI {
				continue
			}
			if d := r.intersect(t, i, px, py, pz, -lx, -ly, -lz); d > 1e-6 {
				lambert *= 0.3
				break
			}
		}
		t.Compute(int64(r.nSpheres) * 12 * flopCycles)
	}
	cr := t.LoadF64(r.sphAddr(bestI, 32))
	cg := t.LoadF64(r.sphAddr(bestI, 40))
	cb := t.LoadF64(r.sphAddr(bestI, 48))
	amb := 0.15
	return pack(amb+cr*lambert, amb+cg*lambert, amb+cb*lambert)
}

// intersect tests one ray against sphere i (loading its geometry).
func (r *Raytrace) intersect(t *core.Thread, i int, ox, oy, oz, dx, dy, dz float64) float64 {
	cx := t.LoadF64(r.sphAddr(i, 0))
	cy := t.LoadF64(r.sphAddr(i, 8))
	cz := t.LoadF64(r.sphAddr(i, 16))
	rad := t.LoadF64(r.sphAddr(i, 24))
	lx, ly, lz := cx-ox, cy-oy, cz-oz
	b := lx*dx + ly*dy + lz*dz
	det := b*b - (lx*lx + ly*ly + lz*lz) + rad*rad
	if det < 0 {
		return -1
	}
	s := math.Sqrt(det)
	if b-s > 1e-6 {
		return b - s
	}
	if b+s > 1e-6 {
		return b + s
	}
	return -1
}

func pack(r, g, b float64) uint32 {
	cl := func(v float64) uint32 {
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return uint32(v * 255)
	}
	return cl(r)<<16 | cl(g)<<8 | cl(b)
}

// refPixel renders a pixel sequentially from the host-side scene copy.
func (r *Raytrace) refPixel(x, y int) uint32 {
	// Re-run tracePixel logic against r.scene without the simulator.
	intersect := func(i int, ox, oy, oz, dx, dy, dz float64) float64 {
		s := r.scene[i]
		lx, ly, lz := s.cx-ox, s.cy-oy, s.cz-oz
		b := lx*dx + ly*dy + lz*dz
		det := b*b - (lx*lx + ly*ly + lz*lz) + s.r*s.r
		if det < 0 {
			return -1
		}
		q := math.Sqrt(det)
		if b-q > 1e-6 {
			return b - q
		}
		if b+q > 1e-6 {
			return b + q
		}
		return -1
	}
	dx := (float64(x)+0.5)/float64(r.w)*2 - 1
	dy := (float64(y)+0.5)/float64(r.h)*2 - 1
	dz := 1.5
	inv := 1 / math.Sqrt(dx*dx+dy*dy+dz*dz)
	dx, dy, dz = dx*inv, dy*inv, dz*inv
	best, bestI := math.Inf(1), -1
	for i := range r.scene {
		if d := intersect(i, 0, 0, 0, dx, dy, dz); d > 0 && d < best {
			best, bestI = d, i
		}
	}
	if bestI < 0 {
		return pack(0.1, 0.1, 0.2)
	}
	s := r.scene[bestI]
	px, py, pz := dx*best, dy*best, dz*best
	nx, ny, nz := (px-s.cx)/s.r, (py-s.cy)/s.r, (pz-s.cz)/s.r
	lx, ly, lz := -0.5, -0.8, -0.3
	linv := 1 / math.Sqrt(lx*lx+ly*ly+lz*lz)
	lx, ly, lz = lx*linv, ly*linv, lz*linv
	lambert := -(nx*lx + ny*ly + nz*lz)
	if lambert < 0 {
		lambert = 0
	}
	if lambert > 0 {
		for i := range r.scene {
			if i == bestI {
				continue
			}
			if d := intersect(i, px, py, pz, -lx, -ly, -lz); d > 1e-6 {
				lambert *= 0.3
				break
			}
		}
	}
	amb := 0.15
	return pack(amb+s.cr*lambert, amb+s.cg*lambert, amb+s.cb*lambert)
}

// Verify compares every pixel against the sequential render (identical
// arithmetic => exact equality).
func (r *Raytrace) Verify(m *core.Machine) error {
	for y := 0; y < r.h; y++ {
		for x := 0; x < r.w; x++ {
			got := r.img.Result(m, y*r.w+x)
			want := r.refPixel(x, y)
			if got != want {
				return fmt.Errorf("raytrace: pixel (%d,%d) = %06x, want %06x", x, y, got, want)
			}
		}
	}
	return nil
}

var _ apps.Instance = (*Raytrace)(nil)

func init() {
	apps.Register(apps.Info{
		Name: "raytrace", BaseSize: "96x96 image, 48 spheres", PaperSize: "car scene",
		InstrumentationPct: 29, Factory: New,
	})
}
