package raytrace

import (
	"testing"

	"swsm/internal/apps"
)

func TestSceneDeterministic(t *testing.T) {
	a := New(apps.Base).(*Raytrace)
	b := New(apps.Base).(*Raytrace)
	// Scene generation happens at Setup; emulate the generator part by
	// checking the RNG-driven reference render agrees between instances.
	a.scene = makeScene(a.nSpheres)
	b.scene = makeScene(b.nSpheres)
	for y := 0; y < a.h; y += 7 {
		for x := 0; x < a.w; x += 7 {
			if a.refPixel(x, y) != b.refPixel(x, y) {
				t.Fatalf("pixel (%d,%d) differs between identical scenes", x, y)
			}
		}
	}
}

func TestSceneHitsSomething(t *testing.T) {
	r := New(apps.Base).(*Raytrace)
	r.scene = makeScene(r.nSpheres)
	background := pack(0.1, 0.1, 0.2)
	hits := 0
	for y := 0; y < r.h; y++ {
		for x := 0; x < r.w; x++ {
			if r.refPixel(x, y) != background {
				hits++
			}
		}
	}
	if hits < r.w*r.h/20 {
		t.Fatalf("only %d of %d pixels hit geometry", hits, r.w*r.h)
	}
}

func TestPackClamps(t *testing.T) {
	if pack(2, 0.5, -1) != 0xff<<16|127<<8 {
		t.Fatalf("pack clamping wrong: %06x", pack(2, 0.5, -1))
	}
}
