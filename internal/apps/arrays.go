package apps

import "swsm/internal/core"

// F64 is a shared array of float64 rooted at a simulated address.
type F64 struct{ Base int64 }

// Addr returns the address of element i.
func (a F64) Addr(i int) int64 { return a.Base + int64(i)*8 }

// Get loads element i through the protocol.
func (a F64) Get(t *core.Thread, i int) float64 { return t.LoadF64(a.Addr(i)) }

// Set stores element i through the protocol.
func (a F64) Set(t *core.Thread, i int, v float64) { t.StoreF64(a.Addr(i), v) }

// Init initializes element i before the parallel phase.
func (a F64) Init(m *core.Machine, i int, v float64) { m.InitF64(a.Addr(i), v) }

// Result reads the authoritative value after the run.
func (a F64) Result(m *core.Machine, i int) float64 { return m.ReadResultF64(a.Addr(i)) }

// U32 is a shared array of 32-bit words.
type U32 struct{ Base int64 }

// Addr returns the address of element i.
func (a U32) Addr(i int) int64 { return a.Base + int64(i)*4 }

// Get loads element i.
func (a U32) Get(t *core.Thread, i int) uint32 { return t.Load32(a.Addr(i)) }

// Set stores element i.
func (a U32) Set(t *core.Thread, i int, v uint32) { t.Store32(a.Addr(i), v) }

// Init initializes element i before the parallel phase.
func (a U32) Init(m *core.Machine, i int, v uint32) { m.InitWord(a.Addr(i), v) }

// Result reads the authoritative value after the run.
func (a U32) Result(m *core.Machine, i int) uint32 { return m.ReadResultWord(a.Addr(i)) }

// I32 is a shared array of signed 32-bit integers.
type I32 struct{ Base int64 }

// Addr returns the address of element i.
func (a I32) Addr(i int) int64 { return a.Base + int64(i)*4 }

// Get loads element i.
func (a I32) Get(t *core.Thread, i int) int32 { return t.LoadI32(a.Addr(i)) }

// Set stores element i.
func (a I32) Set(t *core.Thread, i int, v int32) { t.StoreI32(a.Addr(i), v) }

// Init initializes element i before the parallel phase.
func (a I32) Init(m *core.Machine, i int, v int32) { m.InitWord(a.Addr(i), uint32(v)) }

// Result reads the authoritative value after the run.
func (a I32) Result(m *core.Machine, i int) int32 { return int32(m.ReadResultWord(a.Addr(i))) }
