package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, max int64) *Store {
	t.Helper()
	s, err := Open(dir, max)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1<<20)
	payload := []byte(`{"cycles":12345}`)
	if err := s.Put("v1-abc", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("v1-abc")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v", got, ok)
	}

	// A second Open over the same directory — the daemon-restart path —
	// must serve the entry without help from the writer process.
	s2 := openT(t, dir, 1<<20)
	got, ok = s2.Get("v1-abc")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("after reopen: Get = %q, %v", got, ok)
	}
	if st := s2.Stats(); st.Hits != 1 || st.Entries != 1 || st.Bytes != int64(len(payload)) {
		t.Fatalf("stats after reopen = %+v", st)
	}
}

func TestGetMissingIsMiss(t *testing.T) {
	s := openT(t, t.TempDir(), 1<<20)
	if _, ok := s.Get("v1-nope"); ok {
		t.Fatal("Get of absent key reported a hit")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 miss", st)
	}
}

// TestCrashLeftoverTempFile simulates a writer dying mid-Put: the
// orphaned temp file must be swept on Open and never surface as an
// entry.
func TestCrashLeftoverTempFile(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, ".tmp-crashed")
	if err := os.WriteFile(tmp, []byte("svmstore1\npartial garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir, 1<<20)
	if s.Len() != 0 {
		t.Fatalf("store indexed %d entries from temp garbage", s.Len())
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("leftover temp file not swept: %v", err)
	}
}

// TestTruncatedEntry pins the partial-write story for a committed file
// that was later truncated (filesystem damage): detected, treated as a
// miss, and deleted.
func TestTruncatedEntry(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1<<20)
	payload := []byte("the full result row, long enough to truncate meaningfully")
	if err := s.Put("v1-trunc", payload); err != nil {
		t.Fatal(err)
	}
	path := s.path("v1-trunc")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("v1-trunc"); ok {
		t.Fatal("truncated entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("truncated entry not deleted")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want Corrupt=1", st)
	}
	// The key is recomputable: a fresh Put must succeed and serve again.
	if err := s.Put("v1-trunc", payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("v1-trunc"); !ok || !bytes.Equal(got, payload) {
		t.Fatal("re-put after corruption did not serve")
	}
}

func TestChecksumMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1<<20)
	if err := s.Put("v1-flip", []byte("payload under checksum")); err != nil {
		t.Fatal(err)
	}
	path := s.path("v1-flip")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x01 // flip one payload bit
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("v1-flip"); ok {
		t.Fatal("bit-flipped entry served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want Corrupt=1 Misses=1", st)
	}
}

func TestBadMagicRejected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1<<20)
	if err := s.Put("v1-magic", []byte("x")); err != nil {
		t.Fatal(err)
	}
	path := s.path("v1-magic")
	raw, _ := os.ReadFile(path)
	raw[0] = 'X'
	os.WriteFile(path, raw, 0o644)
	if _, ok := s.Get("v1-magic"); ok {
		t.Fatal("entry with damaged magic served as a hit")
	}
}

func TestLRUEviction(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100)
	s := openT(t, dir, 250) // room for two 100-byte entries
	for _, k := range []string{"v1-a", "v1-b"} {
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so b is the LRU victim.
	if _, ok := s.Get("v1-a"); !ok {
		t.Fatal("v1-a missing before eviction")
	}
	if err := s.Put("v1-c", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("v1-b"); ok {
		t.Fatal("LRU entry v1-b survived eviction")
	}
	for _, k := range []string{"v1-a", "v1-c"} {
		if _, ok := s.Get(k); !ok {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 || st.Bytes != 200 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOversizedEntryResides(t *testing.T) {
	s := openT(t, t.TempDir(), 10)
	big := bytes.Repeat([]byte("y"), 100)
	if err := s.Put("v1-big", big); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get("v1-big"); !ok || !bytes.Equal(got, big) {
		t.Fatal("oversized entry must still serve (sole resident)")
	}
}

// TestEvictionUnderConcurrentRead hammers Get on a working set that
// concurrent Puts continuously evict: no panic, no torn read — every
// hit must return exactly the bytes stored for that key.  Run with
// -race in CI.
func TestEvictionUnderConcurrentRead(t *testing.T) {
	s := openT(t, t.TempDir(), 600) // ~6 of the 16 keys resident
	content := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i)}, 100)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (i + r) % 16
				if got, ok := s.Get(fmt.Sprintf("v1-%02d", k)); ok {
					if !bytes.Equal(got, content(k)) {
						t.Errorf("torn read for key %d: %q", k, got[:8])
						return
					}
				}
			}
		}(r)
	}
	for round := 0; round < 20; round++ {
		for k := 0; k < 16; k++ {
			if err := s.Put(fmt.Sprintf("v1-%02d", k), content(k)); err != nil {
				t.Error(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("test exercised no evictions: %+v", st)
	}
}

// TestLRUOrderSurvivesRestart pins the mtime-based recency
// reconstruction: the entry touched last is the one that survives an
// eviction after reopen.
func TestLRUOrderSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("z"), 100)
	s := openT(t, dir, 1<<20)
	for _, k := range []string{"v1-old", "v1-new"} {
		if err := s.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	// Make the recency distinguishable to coarse filesystem clocks.
	old := time.Now().Add(-time.Hour)
	os.Chtimes(s.path("v1-old"), old, old)

	s2 := openT(t, dir, 250)
	if err := s2.Put("v1-third", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get("v1-old"); ok {
		t.Fatal("stale entry survived restart eviction")
	}
	if _, ok := s2.Get("v1-new"); !ok {
		t.Fatal("fresh entry evicted before stale one after restart")
	}
}

func TestOpenEvictsOverCap(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("w"), 100)
	s := openT(t, dir, 1<<20)
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("v1-%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	s2 := openT(t, dir, 250)
	if st := s2.Stats(); st.Entries != 2 || st.Bytes > 250 {
		t.Fatalf("reopen with smaller cap kept %+v", st)
	}
}

// TestHasProbe pins the stat-only existence probe the cluster
// coordinator routes on: present entries answer true without touching
// hit/miss counters or LRU recency, absent keys answer false, and an
// entry truncated below its header is dropped and reported as a miss
// exactly as Get would.
func TestHasProbe(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1<<20)
	payload := []byte("a result row worth probing for, padded to header size and then some")
	if err := s.Put("v1-here", payload); err != nil {
		t.Fatal(err)
	}

	if !s.Has("v1-here") {
		t.Fatal("Has missed a resident entry")
	}
	if s.Has("v1-absent") {
		t.Fatal("Has claimed an absent key")
	}
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("probing moved traffic counters: %+v", st)
	}

	// Probing must not refresh LRU recency: with room for only one
	// entry, a probed-but-never-Got entry is still the eviction victim.
	small := openT(t, t.TempDir(), 150)
	pad := bytes.Repeat([]byte("x"), 100)
	if err := small.Put("v1-oldest", pad); err != nil {
		t.Fatal(err)
	}
	if !small.Has("v1-oldest") {
		t.Fatal("probe of fresh entry missed")
	}
	if err := small.Put("v1-newer", pad); err != nil {
		t.Fatal(err)
	}
	if small.Has("v1-oldest") {
		t.Fatal("probed entry survived eviction; Has must not freshen LRU order")
	}
}

func TestHasCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 1<<20)
	if err := s.Put("v1-stub", []byte("soon to be truncated beyond recognition")); err != nil {
		t.Fatal(err)
	}
	path := s.path("v1-stub")
	// Truncate below the fixed header (magic + key/payload checksums):
	// committed garbage no Get could ever serve.
	if err := os.WriteFile(path, []byte("svm"), 0o644); err != nil {
		t.Fatal(err)
	}
	if s.Has("v1-stub") {
		t.Fatal("Has served a truncated entry")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Has left the truncated entry on disk")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("stats = %+v, want Corrupt=1", st)
	}
	// A vanished file is likewise a miss, and the index stops
	// advertising the key.
	if err := s.Put("v1-gone", []byte("present, then removed behind the store's back")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(s.path("v1-gone")); err != nil {
		t.Fatal(err)
	}
	if s.Has("v1-gone") {
		t.Fatal("Has served a deleted entry")
	}
	if s.Len() != 0 {
		t.Fatalf("index still advertises %d entries", s.Len())
	}
}
