// Package store is a persistent, content-addressed result store: the
// warm layer underneath the experiment service's in-process memoization.
// Entries are keyed by the stable, versioned content key of a RunSpec
// (harness.RunSpec.Key) and hold that spec's serialized result row, so a
// restarted daemon answers previously computed configurations without
// re-simulating.
//
// Durability model, in layers:
//
//   - Crash safety: every Put writes to a same-directory temp file and
//     renames it into place, so a crash mid-write leaves either the old
//     entry or none — never a torn one.  Leftover temp files from a
//     crashed writer are swept on Open.
//   - Corruption detection: each entry embeds a SHA-256 checksum of its
//     payload under a magic header.  Get verifies it and treats any
//     mismatch (torn rename target, bit rot, truncation outside our
//     control) as a miss, deleting the bad file — the result store is a
//     cache, so the safe response to damage is always "recompute".
//   - Bounded size: the store holds at most a configured number of
//     payload bytes, evicting least-recently-used entries (access order
//     is approximated across restarts by file mtimes, exact within a
//     process).
//
// All methods are safe for concurrent use.  Reads are performed outside
// the index lock, so a Get racing an eviction of the same key simply
// misses.
package store

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// magic heads every entry file; the version digit is bumped with any
// incompatible layout change, orphaning (and eventually evicting) old
// files rather than misreading them.
const magic = "svmstore1\n"

// suffix names committed entry files; tmpPattern names in-flight writes.
const (
	suffix     = ".res"
	tmpPattern = ".tmp-*"
)

// Stats counts store traffic.  The JSON tags are the /metrics wire
// names of the svmd experiment service.
type Stats struct {
	// Hits and Misses count Get outcomes; Puts counts committed writes.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Puts   int64 `json:"puts"`
	// Evictions counts entries removed by the LRU size bound, Corrupt
	// the entries dropped by checksum/format verification.
	Evictions int64 `json:"evictions"`
	Corrupt   int64 `json:"corrupt"`
	// Entries and Bytes describe the current resident set (payload
	// bytes, excluding the fixed per-entry header).
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// HitRatio reports Hits / (Hits + Misses), 0 when idle.
func (s Stats) HitRatio() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type entry struct {
	key  string
	size int64
	elem *list.Element
}

// Store is an on-disk content-addressed cache.  Zero value is not
// usable; construct with Open.
type Store struct {
	dir string
	max int64
	log *slog.Logger

	mu      sync.Mutex
	entries map[string]*entry
	lru     *list.List // front = most recently used; values are *entry
	bytes   int64

	hits, misses, puts, evictions, corrupt int64
}

// SetLogger installs a structured logger for the store's exceptional
// paths — corrupt entries dropped as misses, LRU evictions.  A nil
// logger (the default) disables logging entirely; the hot Get/Put
// paths never log.
func (s *Store) SetLogger(l *slog.Logger) {
	s.mu.Lock()
	s.log = l
	s.mu.Unlock()
}

// Open loads (creating if necessary) the store rooted at dir, bounded
// to maxBytes of payload (<= 0 means 1 GiB).  Pre-existing entries are
// indexed oldest-first by modification time, so LRU order approximately
// survives restarts; leftover temp files from crashed writers are
// removed.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = 1 << 30
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:     dir,
		max:     maxBytes,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	type found struct {
		key   string
		size  int64
		mtime time.Time
	}
	var scan []found
	for _, de := range des {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if ok, _ := filepath.Match(tmpPattern, name); ok {
			// A writer died mid-Put; its temp file is garbage.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, suffix) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		size := info.Size() - int64(len(magic)) - sha256.Size*2 - 1
		if size < 0 {
			// Too short to even hold a header: committed garbage.
			os.Remove(filepath.Join(dir, name))
			s.corrupt++
			continue
		}
		scan = append(scan, found{
			key:   strings.TrimSuffix(name, suffix),
			size:  size,
			mtime: info.ModTime(),
		})
	}
	sort.Slice(scan, func(i, j int) bool { return scan[i].mtime.Before(scan[j].mtime) })
	for _, f := range scan {
		e := &entry{key: f.key, size: f.size}
		e.elem = s.lru.PushFront(e)
		s.entries[f.key] = e
		s.bytes += f.size
	}
	s.mu.Lock()
	s.evictLocked(nil)
	s.mu.Unlock()
	return s, nil
}

// Dir reports the store's root directory.
func (s *Store) Dir() string { return s.dir }

// MaxBytes reports the configured payload-byte bound.
func (s *Store) MaxBytes() int64 { return s.max }

// path maps a key to its entry file.  Keys are content hashes
// ("v1-<hex>"), but harden against anything path-like anyway.
func (s *Store) path(key string) string {
	clean := make([]byte, 0, len(key))
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			clean = append(clean, c)
		default:
			clean = append(clean, '_')
		}
	}
	return filepath.Join(s.dir, string(clean)+suffix)
}

// Has reports whether key is resident, without reading the payload or
// verifying its checksum — a stat-only probe for routing decisions
// (the cluster coordinator asks "could I answer this locally?" before
// paying a full Get's read + decode).  A file too short to hold even
// the entry header is committed garbage: Has drops it and reports a
// miss, exactly as Get would have.  Content-level corruption (bit rot
// under an intact length) is only caught by Get's checksum; Has may
// answer true for such an entry, so callers must still treat the
// follow-up Get as fallible.  Has does not touch hit/miss counters or
// LRU recency: probing is not use.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	_, ok := s.entries[key]
	s.mu.Unlock()
	if !ok {
		return false
	}
	info, err := os.Stat(s.path(key))
	if err != nil || info.Size() < int64(len(magic))+sha256.Size*2+1 {
		// Vanished or truncated below the header: treat like Get's
		// corrupt path so the index stops advertising it.
		s.dropCorrupt(key)
		return false
	}
	return true
}

// Get returns the payload stored under key.  Any verification failure
// — missing file, bad magic, checksum mismatch, truncation — counts as
// a miss (corrupt files are deleted).
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.lru.MoveToFront(e.elem)
	}
	s.mu.Unlock()
	if !ok {
		s.miss()
		return nil, false
	}

	// Read outside the lock: racing an eviction of this key just misses.
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		s.miss()
		return nil, false
	}
	payload, ok := decode(raw)
	if !ok {
		s.dropCorrupt(key)
		s.miss()
		return nil, false
	}
	// Freshen mtime (best effort) so LRU order survives restarts.
	now := time.Now()
	os.Chtimes(s.path(key), now, now)
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	return payload, true
}

// Put stores payload under key, evicting least-recently-used entries if
// the byte bound is exceeded.  Re-putting an existing key rewrites it.
func (s *Store) Put(key string, payload []byte) error {
	tmp, err := os.CreateTemp(s.dir, tmpPattern)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename

	sum := sha256.Sum256(payload)
	var buf bytes.Buffer
	buf.Grow(len(magic) + sha256.Size*2 + 1 + len(payload))
	buf.WriteString(magic)
	buf.WriteString(hex.EncodeToString(sum[:]))
	buf.WriteByte('\n')
	buf.Write(payload)
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	// Flush to stable storage before the rename publishes the entry, so
	// a committed file is never a torn one after power loss.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("store: %w", err)
	}

	size := int64(len(payload))
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.bytes += size - e.size
		e.size = size
		s.lru.MoveToFront(e.elem)
	} else {
		e := &entry{key: key, size: size}
		e.elem = s.lru.PushFront(e)
		s.entries[key] = e
		s.bytes += size
	}
	s.puts++
	s.evictLocked(s.entries[key])
	s.mu.Unlock()
	return nil
}

// evictLocked removes least-recently-used entries until the byte bound
// holds, never evicting keep (the entry just written) so a single
// oversized entry still resides.  Caller holds s.mu.
func (s *Store) evictLocked(keep *entry) {
	for s.bytes > s.max {
		back := s.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		if e == keep {
			return // only the freshly written entry remains
		}
		s.removeLocked(e)
		s.evictions++
		os.Remove(s.path(e.key))
		if s.log != nil {
			s.log.Debug("store: evicted LRU entry", "key", e.key, "bytes", e.size)
		}
	}
}

func (s *Store) removeLocked(e *entry) {
	s.lru.Remove(e.elem)
	delete(s.entries, e.key)
	s.bytes -= e.size
}

// dropCorrupt forgets and deletes a damaged entry.
func (s *Store) dropCorrupt(key string) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.removeLocked(e)
	}
	s.corrupt++
	l := s.log
	s.mu.Unlock()
	os.Remove(s.path(key))
	if l != nil {
		l.Warn("store: dropping corrupt entry", "key", key)
	}
}

func (s *Store) miss() {
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
}

// Len reports the number of resident entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits: s.hits, Misses: s.misses, Puts: s.puts,
		Evictions: s.evictions, Corrupt: s.corrupt,
		Entries: len(s.entries), Bytes: s.bytes,
	}
}

// decode verifies an entry file's magic and checksum, returning the
// payload.
func decode(raw []byte) ([]byte, bool) {
	if len(raw) < len(magic)+sha256.Size*2+1 {
		return nil, false
	}
	if string(raw[:len(magic)]) != magic {
		return nil, false
	}
	hexSum := raw[len(magic) : len(magic)+sha256.Size*2]
	if raw[len(magic)+sha256.Size*2] != '\n' {
		return nil, false
	}
	payload := raw[len(magic)+sha256.Size*2+1:]
	sum := sha256.Sum256(payload)
	return payload, hex.EncodeToString(sum[:]) == string(hexSum)
}
