package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tiny() Config {
	return Config{
		LineSize: 32, L1Size: 256, L1Assoc: 2, L2Size: 1024, L2Assoc: 2,
		L2HitCycles: 10, MemCycles: 60, WritebackCycles: 30,
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(tiny())
	stall, m1, m2 := c.Access(0x100, 4, false)
	if !m1 || !m2 || stall != 60 {
		t.Fatalf("cold access: stall=%d m1=%v m2=%v", stall, m1, m2)
	}
	stall, m1, m2 = c.Access(0x104, 4, false) // same line
	if m1 || m2 || stall != 0 {
		t.Fatalf("warm access: stall=%d m1=%v m2=%v", stall, m1, m2)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	c := New(tiny()) // L1: 8 lines, 2-way, 4 sets; set = (addr>>5)&3
	// Fill one L1 set with 3 distinct lines mapping to set 0: strides of 128.
	c.Access(0*128, 4, false)
	c.Access(1*128, 4, false)
	c.Access(2*128, 4, false) // evicts line 0 from L1; L2 keeps it
	stall, m1, m2 := c.Access(0, 4, false)
	if !m1 || m2 {
		t.Fatalf("expected L1 miss, L2 hit; got m1=%v m2=%v", m1, m2)
	}
	if stall != 10 {
		t.Fatalf("L2 hit stall = %d, want 10", stall)
	}
}

func TestDirtyWritebackCharged(t *testing.T) {
	c := New(tiny())                         // L2: 32 lines, 2-way, 16 sets; same-set stride = 512
	c.Access(0*512, 4, true)                 // dirty
	c.Access(1*512, 4, true)                 // dirty
	stall, _, _ := c.Access(2*512, 4, false) // evicts dirty victim from L2
	if stall != 60+30 {
		t.Fatalf("stall = %d, want 90 (mem + writeback)", stall)
	}
}

func TestInvalidateRange(t *testing.T) {
	c := New(tiny())
	c.Access(0x200, 4, true)
	if !c.Contains(0x200) {
		t.Fatal("line should be cached")
	}
	c.InvalidateRange(0x200, 64)
	if c.Contains(0x200) {
		t.Fatal("line should be invalidated")
	}
	stall, _, _ := c.Access(0x200, 4, false)
	if stall != 60 {
		t.Fatalf("post-invalidate access stall = %d, want 60", stall)
	}
}

func TestMultiLineAccess(t *testing.T) {
	c := New(tiny())
	// 8-byte access straddling a line boundary touches two lines.
	stall, _, _ := c.Access(32-4, 8, false)
	if stall != 120 {
		t.Fatalf("straddling access stall = %d, want 120", stall)
	}
}

func TestTouchPollutes(t *testing.T) {
	c := New(tiny())
	c.Access(0, 4, false) // app line in L1 set 0
	// Protocol touch of a large buffer mapping over all sets evicts it
	// from L1 (tiny L1 = 256B).
	c.Touch(0x1000, 512, true)
	// The line should now miss in L1 (possibly still in L2).
	_, m1, _ := c.Access(0, 4, false)
	if !m1 {
		t.Fatal("protocol touch should have polluted L1")
	}
}

func TestLRUWithinSet(t *testing.T) {
	c := New(tiny()) // L1 2-way; set stride 128
	c.Access(0, 4, false)
	c.Access(128, 4, false)
	c.Access(0, 4, false)   // refresh line 0
	c.Access(256, 4, false) // should evict 128, not 0
	if _, m1, _ := c.Access(0, 4, false); m1 {
		t.Fatal("LRU evicted the recently used line")
	}
}

// Property: a second access to any address immediately after the first is
// always an L1 hit with zero stall, regardless of history.
func TestRepeatAccessAlwaysHits(t *testing.T) {
	c := New(DefaultConfig())
	f := func(addrs []uint32) bool {
		for _, a := range addrs {
			addr := int64(a % (1 << 24))
			c.Access(addr, 4, a%2 == 0)
			stall, m1, _ := c.Access(addr, 4, false)
			if stall != 0 || m1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: miss counters are monotone and L2Misses <= L1Misses <= Accesses.
func TestCounterInvariant(t *testing.T) {
	c := New(tiny())
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		c.Access(int64(r.Intn(1<<16)), 4, r.Intn(2) == 0)
		if c.L2Misses > c.L1Misses || c.L1Misses > c.Accesses {
			t.Fatalf("counter invariant violated: acc=%d l1=%d l2=%d",
				c.Accesses, c.L1Misses, c.L2Misses)
		}
	}
}

func TestWorkingSetFits(t *testing.T) {
	c := New(DefaultConfig())
	// A 8KB working set fits in 16KB L1: after a warmup pass, the second
	// pass must be all hits.
	for a := int64(0); a < 8192; a += 32 {
		c.Access(a, 4, false)
	}
	before := c.L1Misses
	for a := int64(0); a < 8192; a += 32 {
		c.Access(a, 4, false)
	}
	if c.L1Misses != before {
		t.Fatalf("second pass over fitting working set missed %d times", c.L1Misses-before)
	}
}
