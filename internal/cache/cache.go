// Package cache models the node memory hierarchy of the simulated
// cluster: a two-level, set-associative, write-back cache modeled on the
// PentiumPro systems the paper's real implementation used, with LRU
// replacement and explicit invalidation so protocol activity (twinning,
// diffing, page copies) pollutes the cache exactly as in the paper's
// simulator.
package cache

import "fmt"

// Config describes the hierarchy.  All sizes in bytes; latencies in
// processor cycles.  The L1 hit cost is folded into the 1-IPC model, so
// only L2 hits and memory accesses add stall cycles.
type Config struct {
	LineSize int // bytes per cache line (both levels)

	L1Size  int
	L1Assoc int

	L2Size  int
	L2Assoc int

	L2HitCycles     int64 // stall on L1 miss / L2 hit
	MemCycles       int64 // stall on L2 miss
	WritebackCycles int64 // extra stall when a dirty L2 victim is evicted
}

// DefaultConfig is the P6-like hierarchy used throughout the study:
// 32-byte lines, 16 KB 4-way L1, 512 KB 4-way L2, 10-cycle L2 hit,
// 60-cycle memory access at 200 MHz.
func DefaultConfig() Config {
	return Config{
		LineSize:        32,
		L1Size:          16 << 10,
		L1Assoc:         4,
		L2Size:          512 << 10,
		L2Assoc:         4,
		L2HitCycles:     10,
		MemCycles:       60,
		WritebackCycles: 30,
	}
}

// line is one cache line's tag state.
type line struct {
	tag   int64
	valid bool
	dirty bool
	lru   uint64
}

// level is one set-associative array.
type level struct {
	sets     [][]line
	setMask  int64
	lineBits uint
	tick     uint64
}

func newLevel(size, assoc, lineSize int) *level {
	nLines := size / lineSize
	if nLines < assoc {
		assoc = nLines
	}
	nSets := nLines / assoc
	if nSets == 0 {
		nSets = 1
	}
	// nSets must be a power of two for masking.
	if nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nSets))
	}
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	sets := make([][]line, nSets)
	for i := range sets {
		sets[i] = make([]line, assoc)
	}
	return &level{sets: sets, setMask: int64(nSets - 1), lineBits: lineBits}
}

// access probes the level; on miss it installs the line, returning the
// victim's dirtiness.  hit reports whether the tag was present.
func (l *level) access(addr int64, write bool) (hit, victimDirty bool) {
	l.tick++
	lineAddr := addr >> l.lineBits
	set := l.sets[lineAddr&l.setMask]
	tag := lineAddr
	victim := 0
	for i := range set {
		ln := &set[i]
		if ln.valid && ln.tag == tag {
			ln.lru = l.tick
			if write {
				ln.dirty = true
			}
			return true, false
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	v := &set[victim]
	victimDirty = v.valid && v.dirty
	v.tag = tag
	v.valid = true
	v.dirty = write
	v.lru = l.tick
	return false, victimDirty
}

// invalidate drops the line containing addr if present, reporting whether
// it was dirty.
func (l *level) invalidate(addr int64) (present, dirty bool) {
	lineAddr := addr >> l.lineBits
	set := l.sets[lineAddr&l.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			present, dirty = true, set[i].dirty
			set[i].valid = false
			set[i].dirty = false
			return present, dirty
		}
	}
	return false, false
}

// Cache is one node's two-level hierarchy.
type Cache struct {
	cfg Config
	l1  *level
	l2  *level

	// Accumulated counters.
	Accesses int64
	L1Misses int64
	L2Misses int64
}

// New builds a hierarchy from the config.
func New(cfg Config) *Cache {
	return &Cache{
		cfg: cfg,
		l1:  newLevel(cfg.L1Size, cfg.L1Assoc, cfg.LineSize),
		l2:  newLevel(cfg.L2Size, cfg.L2Assoc, cfg.LineSize),
	}
}

// LineSize reports the configured line size.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// Access simulates one data reference of `size` bytes at addr and returns
// the stall cycles beyond the 1-IPC instruction cost, plus miss flags for
// the first line touched.  References spanning multiple lines probe each
// line (the common case, aligned word/double accesses, touches one).
func (c *Cache) Access(addr int64, size int, write bool) (stall int64, l1Miss, l2Miss bool) {
	lineSize := int64(c.cfg.LineSize)
	first := addr &^ (lineSize - 1)
	last := (addr + int64(size) - 1) &^ (lineSize - 1)
	for a := first; a <= last; a += lineSize {
		s, m1, m2 := c.accessLine(a, write)
		stall += s
		if a == first {
			l1Miss, l2Miss = m1, m2
		}
	}
	return stall, l1Miss, l2Miss
}

func (c *Cache) accessLine(addr int64, write bool) (stall int64, l1Miss, l2Miss bool) {
	c.Accesses++
	hit1, _ := c.l1.access(addr, write)
	if hit1 {
		return 0, false, false
	}
	c.L1Misses++
	hit2, victimDirty := c.l2.access(addr, write)
	if hit2 {
		return c.cfg.L2HitCycles, true, false
	}
	c.L2Misses++
	stall = c.cfg.MemCycles
	if victimDirty {
		stall += c.cfg.WritebackCycles
	}
	return stall, true, true
}

// Touch runs a block of protocol data movement (page copy, twin create,
// diff scan) through the hierarchy to model cache pollution, returning the
// total stall cycles.  The block is touched line by line.
func (c *Cache) Touch(addr int64, size int, write bool) (stall int64) {
	lineSize := int64(c.cfg.LineSize)
	end := addr + int64(size)
	for a := addr &^ (lineSize - 1); a < end; a += lineSize {
		s, _, _ := c.accessLine(a, write)
		stall += s
	}
	return stall
}

// InvalidateRange drops all lines overlapping [addr, addr+size) from both
// levels, as a coherence invalidation (page or block) must.
func (c *Cache) InvalidateRange(addr int64, size int) {
	lineSize := int64(c.cfg.LineSize)
	end := addr + int64(size)
	for a := addr &^ (lineSize - 1); a < end; a += lineSize {
		c.l1.invalidate(a)
		c.l2.invalidate(a)
	}
}

// Contains reports whether addr is present in either level (for tests).
func (c *Cache) Contains(addr int64) bool {
	lineAddr1 := addr >> c.l1.lineBits
	for _, ln := range c.l1.sets[lineAddr1&c.l1.setMask] {
		if ln.valid && ln.tag == lineAddr1 {
			return true
		}
	}
	lineAddr2 := addr >> c.l2.lineBits
	for _, ln := range c.l2.sets[lineAddr2&c.l2.setMask] {
		if ln.valid && ln.tag == lineAddr2 {
			return true
		}
	}
	return false
}
