// Package cache models the node memory hierarchy of the simulated
// cluster: a two-level, set-associative, write-back cache modeled on the
// PentiumPro systems the paper's real implementation used, with LRU
// replacement and explicit invalidation so protocol activity (twinning,
// diffing, page copies) pollutes the cache exactly as in the paper's
// simulator.
package cache

import "fmt"

// Config describes the hierarchy.  All sizes in bytes; latencies in
// processor cycles.  The L1 hit cost is folded into the 1-IPC model, so
// only L2 hits and memory accesses add stall cycles.
type Config struct {
	LineSize int // bytes per cache line (both levels)

	L1Size  int
	L1Assoc int

	L2Size  int
	L2Assoc int

	L2HitCycles     int64 // stall on L1 miss / L2 hit
	MemCycles       int64 // stall on L2 miss
	WritebackCycles int64 // extra stall when a dirty L2 victim is evicted
}

// DefaultConfig is the P6-like hierarchy used throughout the study:
// 32-byte lines, 16 KB 4-way L1, 512 KB 4-way L2, 10-cycle L2 hit,
// 60-cycle memory access at 200 MHz.
func DefaultConfig() Config {
	return Config{
		LineSize:        32,
		L1Size:          16 << 10,
		L1Assoc:         4,
		L2Size:          512 << 10,
		L2Assoc:         4,
		L2HitCycles:     10,
		MemCycles:       60,
		WritebackCycles: 30,
	}
}

// noMRU is the most-recently-used tag sentinel; no line address shifts
// down to it.
const noMRU = int64(-1) << 62

// freeTag marks an invalid line.  Real tags are non-negative (simulated
// addresses are), so -1 never collides.
const freeTag = int64(-1)

// level is one set-associative array, stored structure-of-arrays: the
// hit scan compares against a dense row of tags (one 64-byte line holds
// a whole 8-way set), and the LRU/dirty metadata — packed as tick<<1 |
// dirty — is touched only on the hit way or during victim selection.
// Validity is encoded in the tag itself (freeTag).  A one-entry MRU
// filter short-circuits the very common case of consecutive references
// to the same line (sequential word accesses within a 32-byte line)
// without perturbing the LRU bookkeeping: the filtered path performs
// exactly the tick/lru/dirty updates the full probe would.
type level struct {
	tags     []int64  // per line: tag, or freeTag when invalid
	meta     []uint64 // per line: lru tick<<1 | dirty bit
	assoc    int
	setMask  int64
	lineBits uint
	tick     uint64
	mruIdx   int32
	mruTag   int64 // noMRU when the filter is empty
}

func (l *level) init(size, assoc, lineSize int) {
	nLines := size / lineSize
	if nLines < assoc {
		assoc = nLines
	}
	nSets := nLines / assoc
	if nSets == 0 {
		nSets = 1
	}
	// nSets must be a power of two for masking.
	if nSets&(nSets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nSets))
	}
	lineBits := uint(0)
	for 1<<lineBits < lineSize {
		lineBits++
	}
	l.tags = make([]int64, nSets*assoc)
	for i := range l.tags {
		l.tags[i] = freeTag
	}
	l.meta = make([]uint64, nSets*assoc)
	l.assoc = assoc
	l.setMask = int64(nSets - 1)
	l.lineBits = lineBits
	l.mruTag = noMRU
}

// access probes the level; on miss it installs the line, returning the
// victim's dirtiness.  hit reports whether the tag was present.
func (l *level) access(addr int64, write bool) (hit, victimDirty bool) {
	l.tick++
	var w uint64
	if write {
		w = 1
	}
	tag := addr >> l.lineBits
	if tag == l.mruTag {
		i := l.mruIdx
		l.meta[i] = l.tick<<1 | l.meta[i]&1 | w
		return true, false
	}
	base := int(tag&l.setMask) * l.assoc
	tags := l.tags[base : base+l.assoc]
	for i := range tags {
		if tags[i] == tag {
			idx := base + i
			l.meta[idx] = l.tick<<1 | l.meta[idx]&1 | w
			l.mruIdx, l.mruTag = int32(idx), tag
			return true, false
		}
	}
	// Miss: pick the victim exactly as the paper's simulator did — the
	// last invalid way if any, else the first way with the minimum LRU
	// tick (strict < keeps earlier ways on ties).
	victim := 0
	vFree := tags[0] == freeTag
	vLRU := l.meta[base] >> 1
	for i := 1; i < len(tags); i++ {
		if tags[i] == freeTag {
			victim, vFree = i, true
		} else if !vFree {
			if lru := l.meta[base+i] >> 1; lru < vLRU {
				victim, vLRU = i, lru
			}
		}
	}
	idx := base + victim
	victimDirty = tags[victim] != freeTag && l.meta[idx]&1 != 0
	tags[victim] = tag
	l.meta[idx] = l.tick<<1 | w
	l.mruIdx, l.mruTag = int32(idx), tag
	return false, victimDirty
}

// invalidate drops the line containing addr if present, reporting whether
// it was dirty.
func (l *level) invalidate(addr int64) (present, dirty bool) {
	tag := addr >> l.lineBits
	base := int(tag&l.setMask) * l.assoc
	tags := l.tags[base : base+l.assoc]
	for i := range tags {
		if tags[i] == tag {
			idx := base + i
			dirty = l.meta[idx]&1 != 0
			tags[i] = freeTag
			l.meta[idx] = 0
			if l.mruTag == tag {
				l.mruTag = noMRU
			}
			return true, dirty
		}
	}
	return false, false
}

// Cache is one node's two-level hierarchy.  The levels are embedded by
// value: probing goes straight from the Cache pointer to the flat line
// arrays with no intermediate allocation.
type Cache struct {
	cfg Config
	l1  level
	l2  level

	// Accumulated counters.
	Accesses int64
	L1Misses int64
	L2Misses int64
}

// New builds a hierarchy from the config.
func New(cfg Config) *Cache {
	c := &Cache{cfg: cfg}
	c.l1.init(cfg.L1Size, cfg.L1Assoc, cfg.LineSize)
	c.l2.init(cfg.L2Size, cfg.L2Assoc, cfg.LineSize)
	return c
}

// LineSize reports the configured line size.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

// Access simulates one data reference of `size` bytes at addr and returns
// the stall cycles beyond the 1-IPC instruction cost, plus miss flags for
// the first line touched.  References spanning multiple lines probe each
// line (the common case, aligned word/double accesses, touches one).
func (c *Cache) Access(addr int64, size int, write bool) (stall int64, l1Miss, l2Miss bool) {
	lineSize := int64(c.cfg.LineSize)
	first := addr &^ (lineSize - 1)
	last := (addr + int64(size) - 1) &^ (lineSize - 1)
	for a := first; a <= last; a += lineSize {
		s, m1, m2 := c.accessLine(a, write)
		stall += s
		if a == first {
			l1Miss, l2Miss = m1, m2
		}
	}
	return stall, l1Miss, l2Miss
}

func (c *Cache) accessLine(addr int64, write bool) (stall int64, l1Miss, l2Miss bool) {
	c.Accesses++
	hit1, _ := c.l1.access(addr, write)
	if hit1 {
		return 0, false, false
	}
	c.L1Misses++
	hit2, victimDirty := c.l2.access(addr, write)
	if hit2 {
		return c.cfg.L2HitCycles, true, false
	}
	c.L2Misses++
	stall = c.cfg.MemCycles
	if victimDirty {
		stall += c.cfg.WritebackCycles
	}
	return stall, true, true
}

// Touch runs a block of protocol data movement (page copy, twin create,
// diff scan) through the hierarchy to model cache pollution, returning the
// total stall cycles.  The block is touched line by line.
func (c *Cache) Touch(addr int64, size int, write bool) (stall int64) {
	lineSize := int64(c.cfg.LineSize)
	end := addr + int64(size)
	for a := addr &^ (lineSize - 1); a < end; a += lineSize {
		s, _, _ := c.accessLine(a, write)
		stall += s
	}
	return stall
}

// InvalidateRange drops all lines overlapping [addr, addr+size) from both
// levels, as a coherence invalidation (page or block) must.
func (c *Cache) InvalidateRange(addr int64, size int) {
	lineSize := int64(c.cfg.LineSize)
	end := addr + int64(size)
	for a := addr &^ (lineSize - 1); a < end; a += lineSize {
		c.l1.invalidate(a)
		c.l2.invalidate(a)
	}
}

// Contains reports whether addr is present in either level (for tests).
func (c *Cache) Contains(addr int64) bool {
	return c.l1.contains(addr) || c.l2.contains(addr)
}

func (l *level) contains(addr int64) bool {
	tag := addr >> l.lineBits
	base := int(tag&l.setMask) * l.assoc
	for _, t := range l.tags[base : base+l.assoc] {
		if t == tag {
			return true
		}
	}
	return false
}
