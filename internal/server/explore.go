package server

import (
	"context"
	"errors"
	"time"

	"swsm/internal/explore"
	"swsm/internal/harness"
	"swsm/internal/server/api"
)

// serverEvaluator executes exploration candidates through the daemon's
// own job scheduler, so auto-tuning traffic is ordinary traffic: each
// point is a detached job that coalesces with identical in-flight
// requests, competes for queue slots under the same backpressure, and
// resolves store-first exactly like a POST /runs.  A full queue parks
// the batch (bounded retry with the daemon's own Retry-After cadence)
// instead of overflowing it — the optimizer is the one client that must
// never amplify pressure on a busy daemon.
type serverEvaluator struct{ s *Server }

// submitRetryDelay paces re-submission attempts against a full queue.
const submitRetryDelay = 10 * time.Millisecond

func (e serverEvaluator) Evaluate(ctx context.Context, specs []harness.RunSpec) ([]explore.Evaluation, error) {
	out := make([]explore.Evaluation, len(specs))
	jobs := make([]*job, len(specs))
	for i, spec := range specs {
		out[i].Spec = spec
		// Probe caches before execution: the budget ledger charges only
		// evaluations that were warm nowhere.
		if e.s.ses.Cached(spec) || (e.s.st != nil && e.s.st.Has(spec.Key())) {
			out[i].Cached = true
		}
		for {
			j, _, err := e.s.submit(api.RunRequest{Spec: spec}, true)
			if err == nil {
				jobs[i] = j
				break
			}
			if !errors.Is(err, ErrQueueFull) {
				return nil, err // draining or invalid — abort the search
			}
			select {
			case <-time.After(submitRetryDelay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	for i, j := range jobs {
		select {
		case <-j.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		e.s.mu.Lock()
		switch {
		case j.state == api.StateDone:
			out[i].Row = j.row
			if j.cached {
				out[i].Cached = true
			}
		case j.err != nil:
			out[i].Err = j.err.Error()
		default:
			out[i].Err = "job " + j.id + " ended in state " + j.state
		}
		e.s.mu.Unlock()
	}
	return out, nil
}

// newExploreManager builds the daemon's exploration manager: events on
// the daemon's SSE bus, admission gated on draining, svmd_explore_*
// registered on the daemon's registry.
func newExploreManager(s *Server, limit int) *explore.Manager {
	m := explore.NewManager(explore.ManagerConfig{
		Evaluator: serverEvaluator{s},
		Publish: func(eventType string, st *explore.Status) {
			s.bus.Publish(api.Event{Type: eventType, Explore: st})
		},
		Admit: func() error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.draining {
				return ErrDraining
			}
			return nil
		},
		Limit:  limit,
		Logger: s.log,
	})
	explore.RegisterMetrics(s.met.reg, m)
	return m
}
