package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"swsm/internal/apps"
	"swsm/internal/harness"
	"swsm/internal/server/api"
	"swsm/internal/server/client"
)

// tinySpec is the canonical fast test point: fft at Tiny scale on a few
// processors completes in milliseconds.
func tinySpec(procs int) harness.RunSpec {
	spec := harness.DefaultSpec("fft", harness.HLRC)
	spec.Scale = apps.Tiny
	spec.Procs = procs
	return spec
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
	})
	return s, ts, client.New(ts.URL)
}

func TestRunEndToEnd(t *testing.T) {
	_, _, c := newTestServer(t, Config{Parallel: 2})
	spec := tinySpec(4)
	st, err := c.Run(context.Background(), api.RunRequest{Spec: spec, Speedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone || st.Row == nil {
		t.Fatalf("status = %+v", st)
	}
	if st.Key != spec.Key() || st.Row.Key != spec.Key() {
		t.Fatalf("key mismatch: status %s, row %s, want %s", st.Key, st.Row.Key, spec.Key())
	}
	// The daemon must agree with a local in-process run bit for bit.
	local, err := harness.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Row.Cycles != local.Cycles {
		t.Fatalf("remote cycles %d != local %d", st.Row.Cycles, local.Cycles)
	}
	if st.Row.Speedup <= 0 || st.Row.SeqCycles <= 0 {
		t.Fatalf("speedup not computed: %+v", st.Row)
	}
	if st.Cached {
		t.Fatal("fresh run reported cached")
	}
}

// TestRunHeteroSpec pins the job API's heterogeneity plane: a RunSpec
// carrying a skewed machine model and adaptive placement round-trips
// through the daemon's JSON wire format and store and agrees with a
// local in-process run bit for bit.
func TestRunHeteroSpec(t *testing.T) {
	_, _, c := newTestServer(t, Config{Parallel: 2})
	spec := tinySpec(4)
	hs, err := harness.HeteroSpec("cpu4", "adaptive")
	if err != nil {
		t.Fatal(err)
	}
	spec.Hetero = hs
	st, err := c.Run(context.Background(), api.RunRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone || st.Row == nil {
		t.Fatalf("status = %+v", st)
	}
	if st.Key != spec.Key() {
		t.Fatalf("key mismatch: daemon %s, local %s (hetero fields lost on the wire?)", st.Key, spec.Key())
	}
	local, err := harness.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Row.Cycles != local.Cycles {
		t.Fatalf("remote cycles %d != local %d", st.Row.Cycles, local.Cycles)
	}
	// An invalid hetero spec must be rejected at admission.
	bad := tinySpec(4)
	bad.Hetero.SlowNum = 3 // den left zero
	if _, err := c.Run(context.Background(), api.RunRequest{Spec: bad}); err == nil {
		t.Fatal("invalid hetero spec accepted")
	}
}

// TestConcurrentIdenticalPOSTs pins the acceptance criterion: N
// identical concurrent requests execute the simulation exactly once
// (HTTP-layer coalescing + runner single-flight + memoization).
func TestConcurrentIdenticalPOSTs(t *testing.T) {
	s, _, c := newTestServer(t, Config{Parallel: 2})
	const n = 8
	var wg sync.WaitGroup
	statuses := make([]*api.RunStatus, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], errs[i] = c.Run(context.Background(), api.RunRequest{Spec: tinySpec(2)})
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if statuses[i].State != api.StateDone || statuses[i].Row == nil {
			t.Fatalf("request %d: %+v", i, statuses[i])
		}
		if statuses[i].Row.Cycles != statuses[0].Row.Cycles {
			t.Fatalf("request %d diverged: %d != %d", i, statuses[i].Row.Cycles, statuses[0].Row.Cycles)
		}
	}
	if rs := s.RunnerStats(); rs.Runs != 1 {
		t.Fatalf("runner ran %d simulations for %d identical requests, want exactly 1 (stats %+v)", rs.Runs, n, rs)
	}
}

// TestRestartServesFromStore pins the other acceptance criterion: a
// restarted daemon answers a previously computed RunSpec from the
// persistent store without re-simulating.
func TestRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(2)

	s1, err := New(Config{Parallel: 2, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	c1 := client.New(ts1.URL)
	first, err := c1.Run(context.Background(), api.RunRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("cold run reported cached")
	}
	if rs := s1.RunnerStats(); rs.Runs != 1 {
		t.Fatalf("first daemon ran %d simulations, want 1", rs.Runs)
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// "Restart": a fresh Server over the same store directory.
	s2, ts2, c2 := func() (*Server, *httptest.Server, *client.Client) {
		s, err := New(Config{Parallel: 2, StoreDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		return s, ts, client.New(ts.URL)
	}()
	defer ts2.Close()
	defer s2.Drain(context.Background())

	warm, err := c2.Run(context.Background(), api.RunRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatalf("restarted daemon did not serve from store: %+v", warm)
	}
	if warm.Row.Cycles != first.Row.Cycles {
		t.Fatalf("stored cycles %d != original %d", warm.Row.Cycles, first.Row.Cycles)
	}
	if rs := s2.RunnerStats(); rs.Runs != 0 {
		t.Fatalf("restarted daemon ran %d simulations, want 0 (store hit)", rs.Runs)
	}
	if ss := s2.StoreStats(); ss.Hits != 1 {
		t.Fatalf("store stats = %+v, want Hits=1", ss)
	}
}

// blockingServer returns a server whose runFn parks until release is
// closed, making queue-occupancy tests deterministic.
func blockingServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *client.Client, chan struct{}) {
	t.Helper()
	release := make(chan struct{})
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.runFn = func(ctx context.Context, spec harness.RunSpec) (*harness.Result, error) {
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return s.ses.RunCtx(ctx, spec)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
	})
	return s, ts, client.New(ts.URL), release
}

func postRun(t *testing.T, ts *httptest.Server, req api.RunRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestBackpressure429 pins explicit admission control: with one worker
// occupied and the one-deep queue full, the next submission is rejected
// with 429 and a Retry-After hint rather than buffered.
func TestBackpressure429(t *testing.T) {
	s, ts, _, release := blockingServer(t, Config{Parallel: 1, QueueDepth: 1})
	// Occupy the worker...
	r1 := postRun(t, ts, api.RunRequest{Spec: tinySpec(2)})
	r1.Body.Close()
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", r1.StatusCode)
	}
	waitInFlight(t, s, 1)
	// ...fill the queue...
	r2 := postRun(t, ts, api.RunRequest{Spec: tinySpec(8)})
	r2.Body.Close()
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202", r2.StatusCode)
	}
	// ...and overflow it.
	r3 := postRun(t, ts, api.RunRequest{Spec: tinySpec(4)})
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	// A duplicate of queued work still coalesces instead of rejecting.
	r4 := postRun(t, ts, api.RunRequest{Spec: tinySpec(8)})
	r4.Body.Close()
	if r4.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate of queued spec = %d, want 202 (coalesced)", r4.StatusCode)
	}
	close(release)
}

func waitInFlight(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Metrics().InFlight >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("in-flight never reached %d", want)
}

func TestCancelQueuedJob(t *testing.T) {
	s, ts, c, release := blockingServer(t, Config{Parallel: 1, QueueDepth: 4})
	r1 := postRun(t, ts, api.RunRequest{Spec: tinySpec(2)})
	r1.Body.Close()
	waitInFlight(t, s, 1)

	r2 := postRun(t, ts, api.RunRequest{Spec: tinySpec(8)})
	var queued api.RunStatus
	if err := json.NewDecoder(r2.Body).Decode(&queued); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if queued.State != api.StateQueued {
		t.Fatalf("second job state = %s, want queued", queued.State)
	}
	got, err := c.Cancel(context.Background(), queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.StateCanceled {
		t.Fatalf("cancelled job state = %s", got.State)
	}
	close(release)
	// The cancelled job must never execute: after the blocker finishes,
	// only one simulation ran.
	st, err := c.Get(context.Background(), "j1", true)
	if err != nil || st.State != api.StateDone {
		t.Fatalf("blocker job: %+v, %v", st, err)
	}
	if rs := s.RunnerStats(); rs.Runs != 1 {
		t.Fatalf("runner ran %d simulations, want 1 (cancelled job must not run)", rs.Runs)
	}
}

func TestDrainRejectsNewWork(t *testing.T) {
	s, ts, c, _ := blockingServer(t, Config{Parallel: 1, QueueDepth: 2})
	// Drain an idle server completes immediately and flips healthz.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !h.Draining || h.KeyVersion != harness.KeyVersion {
		t.Fatalf("health = %+v", h)
	}
	resp := postRun(t, ts, api.RunRequest{Spec: tinySpec(2)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
}

func TestValidation(t *testing.T) {
	_, ts, _, _ := blockingServer(t, Config{Parallel: 1})
	bad := []api.RunRequest{
		{Spec: func() harness.RunSpec { s := tinySpec(2); s.App = "no-such-app"; return s }()},
		{Spec: func() harness.RunSpec { s := tinySpec(2); s.Protocol = "mesi"; return s }()},
		{Spec: func() harness.RunSpec { s := tinySpec(0); return s }()},
		{Spec: func() harness.RunSpec { s := tinySpec(2); s.Trace = true; return s }()},
		{Spec: func() harness.RunSpec { s := tinySpec(2); s.Comm.MaxPacket = 0; return s }()},
		{Spec: func() harness.RunSpec { s := tinySpec(2); s.Fault.DropPPM = -1; return s }()},
	}
	for i, req := range bad {
		resp := postRun(t, ts, req)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad request %d accepted with %d", i, resp.StatusCode)
		}
	}
}

func TestSweep(t *testing.T) {
	s, _, c, _ := newTestServerWithStore(t)
	req := api.SweepRequest{Points: []api.RunRequest{
		{Spec: tinySpec(2)},
		{Spec: tinySpec(4)},
		{Spec: tinySpec(2)}, // duplicate point: must coalesce, not re-run
	}}
	st, err := c.Sweep(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 3 || st.Done != 3 || st.Failed != 0 {
		t.Fatalf("sweep status = %+v", st)
	}
	if st.Points[0].ID != st.Points[2].ID {
		t.Fatalf("duplicate points got distinct jobs: %s vs %s", st.Points[0].ID, st.Points[2].ID)
	}
	if st.Points[0].Row.Cycles != st.Points[2].Row.Cycles {
		t.Fatal("duplicate points disagree")
	}
	if rs := s.RunnerStats(); rs.Runs != 2 {
		t.Fatalf("sweep ran %d simulations for 2 distinct points, want 2", rs.Runs)
	}
}

func newTestServerWithStore(t *testing.T) (*Server, *httptest.Server, *client.Client, string) {
	t.Helper()
	dir := t.TempDir()
	s, ts, c := newTestServer(t, Config{Parallel: 2, StoreDir: dir})
	return s, ts, c, dir
}

// TestEventsSSE pins the /events contract: a subscriber sees the job's
// lifecycle (queued → started → done) with the stats-layer row attached
// to the terminal frame.
func TestEventsSSE(t *testing.T) {
	_, ts, c, _ := newTestServerWithStore(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type frame struct {
		event string
		data  api.Event
	}
	frames := make(chan frame, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		var ev string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				ev = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				var e api.Event
				if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e) == nil {
					frames <- frame{ev, e}
				}
			}
		}
		close(frames)
	}()

	if _, err := c.Run(ctx, api.RunRequest{Spec: tinySpec(2)}); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"jobQueued": false, "jobStarted": false, "jobDone": false}
	for !want["jobDone"] {
		select {
		case f, ok := <-frames:
			if !ok {
				t.Fatal("event stream closed before jobDone")
			}
			if _, tracked := want[f.event]; tracked {
				want[f.event] = true
			}
			if f.event != f.data.Type {
				t.Fatalf("SSE event name %q != payload type %q", f.event, f.data.Type)
			}
			if f.event == "jobDone" {
				if f.data.Job == nil || f.data.Job.Row == nil {
					t.Fatalf("jobDone without row: %+v", f.data)
				}
				if f.data.Job.Row.Breakdown["busy"] <= 0 {
					t.Fatal("jobDone row lost the stats breakdown")
				}
			}
		case <-ctx.Done():
			t.Fatalf("timed out; saw %+v", want)
		}
	}
	if !want["jobQueued"] || !want["jobStarted"] {
		t.Fatalf("missing lifecycle frames: %+v", want)
	}
}

func TestMetricsShape(t *testing.T) {
	s, _, c, _ := newTestServerWithStore(t)
	if _, err := c.Run(context.Background(), api.RunRequest{Spec: tinySpec(2)}); err != nil {
		t.Fatal(err)
	}
	// Warm repeat: in-process memo serves it (store is only consulted on
	// the queue path before the runner, so either cache may hit; what
	// matters is no second simulation).
	if _, err := c.Run(context.Background(), api.RunRequest{Spec: tinySpec(2)}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Workers != s.ses.Parallelism() || m.QueueCap == 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.Jobs[api.StateDone] < 1 {
		t.Fatalf("metrics lost done jobs: %+v", m.Jobs)
	}
	if m.Runner.Runs != 1 {
		t.Fatalf("metrics runner = %+v, want exactly 1 run", m.Runner)
	}
	if m.Store.Puts != 1 {
		t.Fatalf("metrics store = %+v, want 1 put", m.Store)
	}
}

// TestSweepRollbackPreservesForeignJobs pins that a sweep rejected for
// queue overflow cancels only its own fresh jobs, never a job another
// client coalesced onto.
func TestSweepRollbackPreservesForeignJobs(t *testing.T) {
	s, ts, c, release := blockingServer(t, Config{Parallel: 1, QueueDepth: 2})
	// Foreign job occupies the worker; another sits queued.
	r1 := postRun(t, ts, api.RunRequest{Spec: tinySpec(2)})
	r1.Body.Close()
	waitInFlight(t, s, 1)
	r2 := postRun(t, ts, api.RunRequest{Spec: tinySpec(8)})
	var foreign api.RunStatus
	json.NewDecoder(r2.Body).Decode(&foreign)
	r2.Body.Close()

	// Sweep: first point coalesces onto the queued foreign job, the rest
	// overflow the queue.
	body, _ := json.Marshal(api.SweepRequest{Points: []api.RunRequest{
		{Spec: tinySpec(8)},  // coalesces
		{Spec: tinySpec(4)},  // takes last queue slot
		{Spec: tinySpec(16)}, // overflows → whole sweep rejected
		{Spec: tinySpec(1)},
	}})
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflowing sweep = %d, want 429", resp.StatusCode)
	}
	// The foreign queued job must still be live.
	st, err := c.Get(context.Background(), foreign.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == api.StateCanceled {
		t.Fatal("sweep rollback cancelled a foreign job")
	}
	close(release)
	if _, err := c.Get(context.Background(), foreign.ID, true); err != nil {
		t.Fatal(err)
	}
}

func TestListRuns(t *testing.T) {
	_, ts, c, _ := newTestServerWithStore(t)
	if _, err := c.Run(context.Background(), api.RunRequest{Spec: tinySpec(2)}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []api.RunStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].State != api.StateDone {
		t.Fatalf("list = %+v", list)
	}
}

func TestUnknownJobAndSweep(t *testing.T) {
	_, ts, _, _ := newTestServerWithStore(t)
	for _, path := range []string{"/runs/j999", "/sweeps/s999"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestClientBackoffRetries pins the client half of backpressure: a 429
// makes the client retry after Retry-After rather than fail.
func TestClientBackoffRetries(t *testing.T) {
	var mu sync.Mutex
	rejections := 0
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		if rejections < 2 {
			rejections++
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"job queue full"}`)
			return
		}
		fmt.Fprint(w, `{"id":"j1","key":"k","state":"done"}`)
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := client.New(ts.URL)
	st, err := c.Run(context.Background(), api.RunRequest{Spec: tinySpec(2)})
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("status = %+v", st)
	}
	mu.Lock()
	defer mu.Unlock()
	if rejections != 2 {
		t.Fatalf("client retried through %d rejections, want 2", rejections)
	}
}
