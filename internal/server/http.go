package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"

	"swsm/internal/harness"
	"swsm/internal/obs"
	"swsm/internal/server/api"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /runs            submit a run ({"spec":{...},"speedup":true}); ?wait=1 blocks until terminal
//	GET    /runs            list job statuses (newest first)
//	GET    /runs/{id}       one job's status/result; ?wait=1 blocks until terminal
//	DELETE /runs/{id}       cancel a job
//	POST   /sweeps          submit a batch ({"points":[...]}); ?wait=1 blocks until all terminal
//	GET    /sweeps/{id}     sweep progress with per-point statuses
//	GET    /events          SSE stream of job/sweep lifecycle events
//	GET    /runs/{id}/trace stitched Chrome/Perfetto timeline for a done job
//	GET    /metrics         Prometheus text exposition (default); the JSON
//	                        snapshot with Accept: application/json or ?format=json
//	GET    /healthz         liveness + drain state + key version
//	GET    /debug/pprof/*   Go profiling endpoints (CPU, heap, goroutines, ...)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /runs", s.handleSubmitRun)
	mux.HandleFunc("GET /runs", s.handleListRuns)
	mux.HandleFunc("GET /runs/{id}", s.handleGetRun)
	mux.HandleFunc("GET /runs/{id}/trace", s.handleRunTrace)
	mux.HandleFunc("DELETE /runs/{id}", s.handleCancelRun)
	mux.HandleFunc("POST /sweeps", s.handleSubmitSweep)
	mux.HandleFunc("GET /sweeps/{id}", s.handleGetSweep)
	mux.HandleFunc("POST /explore", s.expl.HandleSubmit)
	mux.HandleFunc("GET /explore", s.expl.HandleList)
	mux.HandleFunc("GET /explore/{id}", s.expl.HandleGet)
	mux.HandleFunc("GET /explore/{id}/frontier", s.expl.HandleFrontierCSV)
	mux.HandleFunc("DELETE /explore/{id}", s.expl.HandleCancel)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// httpError is the uniform JSON error body.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// submitError maps scheduler admission errors to status codes: 503 while
// draining, 429 + Retry-After on a full queue (explicit backpressure —
// the client should back off, not the daemon buffer without bound).
func submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "%v", err)
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

func wantWait(r *http.Request) bool {
	switch r.URL.Query().Get("wait") {
	case "", "0", "false":
		return false
	}
	return true
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req api.RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := ValidateRequest(req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	wait := wantWait(r)
	j, _, err := s.submit(req, !wait)
	if err != nil {
		submitError(w, err)
		return
	}
	if wait {
		if err := s.waitJob(r.Context(), j); err != nil {
			// The client is gone; nothing useful to write.
			return
		}
	}
	s.mu.Lock()
	st := statusLocked(j)
	s.mu.Unlock()
	code := http.StatusAccepted
	if st.State == api.StateDone || st.State == api.StateFailed || st.State == api.StateCanceled {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]api.RunStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *statusLocked(j))
	}
	s.mu.Unlock()
	// Job IDs are "j<seq>"; sort newest first by numeric part.
	sort.Slice(out, func(i, k int) bool {
		return len(out[i].ID) > len(out[k].ID) ||
			(len(out[i].ID) == len(out[k].ID) && out[i].ID > out[k].ID)
	})
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) jobByID(r *http.Request) (*job, bool) {
	s.mu.Lock()
	j, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	return j, ok
}

func (s *Server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	if wantWait(r) {
		if err := s.waitJob(r.Context(), j); err != nil {
			return
		}
	}
	s.mu.Lock()
	st := statusLocked(j)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCancelRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	live := s.cancelLocked(j)
	st := statusLocked(j)
	s.mu.Unlock()
	if !live && st.State != api.StateCanceled {
		httpError(w, http.StatusConflict, "job %s already %s", st.ID, st.State)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Points) == 0 {
		httpError(w, http.StatusBadRequest, "sweep has no points")
		return
	}
	for i, p := range req.Points {
		if err := ValidateRequest(p); err != nil {
			httpError(w, http.StatusBadRequest, "invalid point %d: %v", i, err)
			return
		}
	}
	// Admit every point (deduplicated against in-flight work) before
	// registering the sweep; a full queue rejects the whole batch so the
	// client never receives a half-admitted sweep.  Rollback cancels only
	// jobs this sweep created — never jobs coalesced from other clients.
	jobs := make([]*job, 0, len(req.Points))
	var ours []*job
	for i, p := range req.Points {
		j, created, err := s.submit(p, true)
		if err != nil {
			s.mu.Lock()
			for _, mine := range ours {
				if mine.state == api.StateQueued {
					s.cancelLocked(mine)
				}
			}
			s.mu.Unlock()
			if errors.Is(err, ErrQueueFull) {
				err = fmt.Errorf("%w admitting point %d of %d", err, i, len(req.Points))
			}
			submitError(w, err)
			return
		}
		jobs = append(jobs, j)
		if created {
			ours = append(ours, j)
		}
	}
	s.mu.Lock()
	s.nextSweep++
	sw := &sweepState{id: fmt.Sprintf("s%d", s.nextSweep), jobs: jobs}
	s.sweeps[sw.id] = sw
	for _, j := range jobs {
		j.sweeps = append(j.sweeps, sw)
	}
	s.mu.Unlock()

	if wantWait(r) {
		for _, j := range jobs {
			if err := s.waitJob(r.Context(), j); err != nil {
				return
			}
		}
	}
	s.mu.Lock()
	st := sweepStatusLocked(sw, true)
	s.mu.Unlock()
	code := http.StatusAccepted
	if st.Done+st.Failed == st.Total {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

func (s *Server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	sw, ok := s.sweeps[r.PathValue("id")]
	var st *api.SweepStatus
	if ok {
		st = sweepStatusLocked(sw, true)
	}
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, cancel := s.bus.Subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": %s connected\n\n", Version)
	fl.Flush()

	ping := time.NewTicker(15 * time.Second)
	defer ping.Stop()
	for {
		select {
		case e, open := <-ch:
			if !open { // bus closed: drain finished
				return
			}
			data, err := json.Marshal(e)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
			fl.Flush()
		case <-ping.C:
			fmt.Fprint(w, ": ping\n\n")
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleMetrics content-negotiates between the Prometheus text
// exposition (the scraper default) and the original JSON snapshot
// (Accept: application/json, or ?format=json for curl convenience).
// Both render from lock-free instruments or short critical sections —
// scraping never waits on a running simulation.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" ||
		strings.Contains(r.Header.Get("Accept"), "application/json") {
		writeJSON(w, http.StatusOK, s.Metrics())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.reg.WritePrometheus(w)
}

// handleRunTrace serves one completed job as a stitched Chrome/Perfetto
// timeline: the job's wall-clock lifecycle spans (queue wait, store
// traffic, simulation, response) as one track, the simulator's own
// deterministic event trace as a second, with simulated cycle 0
// anchored at the wall-clock start of the sim span.
//
// Remote submissions never carry Trace (ValidateRequest rejects it), so
// the sim-level trace is produced here by re-resolving the job's spec
// with Trace set through the memoized session: the simulator is
// deterministic, so the re-run reproduces exactly the cycles the job
// observed, and repeat fetches hit the memo.  The persistent store is
// bypassed — trace capture is an in-process artifact.
func (s *Server) handleRunTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r)
	if !ok {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	s.mu.Lock()
	state := j.state
	spec := j.req.Spec
	spans := j.spans.Snapshot()
	s.mu.Unlock()
	if state != api.StateDone {
		httpError(w, http.StatusConflict, "job %s is %s; traces are served for done jobs", j.id, state)
		return
	}
	spec.Trace = true
	res, err := s.runFn(r.Context(), spec)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "trace re-run: %v", err)
		return
	}
	if res.Trace == nil {
		httpError(w, http.StatusNotImplemented, "this server's run function does not capture traces")
		return
	}
	label := fmt.Sprintf("sim %s/%s p%d", spec.App, spec.Protocol, spec.Procs)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	obs.WriteStitchedChrome(w, j.id, spans, label, res.Trace)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, api.Health{
		OK: true, Draining: draining,
		Version: Version, KeyVersion: harness.KeyVersion,
	})
}
