package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"swsm/internal/server/api"
)

// flappingServer kills the first n connections at the transport level
// (hijack + close, which the client sees as EOF / connection reset —
// exactly what a restarting daemon looks like) and serves normally
// afterwards.
func flappingServer(t *testing.T, n int, handler http.HandlerFunc) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("test server cannot hijack")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			conn.Close()
			return
		}
		handler(w, r)
	}))
	// Connection reuse would let a killed conn poison the next request;
	// the default client retries that internally and muddies the count.
	ts.Client().Transport.(*http.Transport).DisableKeepAlives = true
	t.Cleanup(ts.Close)
	return ts, &calls
}

// An idempotent GET must ride out transient connection errors (the
// daemon restarting under it) with capped backoff and then succeed.
func TestGetRetriesTransientErrors(t *testing.T) {
	ts, calls := flappingServer(t, 3, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || r.URL.Path != "/runs/j1" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		json.NewEncoder(w).Encode(api.RunStatus{ID: "j1", State: api.StateDone})
	})
	c := New(ts.URL)
	c.HTTP = ts.Client()
	st, err := c.Get(context.Background(), "j1", false)
	if err != nil {
		t.Fatalf("Get through flapping server: %v", err)
	}
	if st.ID != "j1" || st.State != api.StateDone {
		t.Fatalf("got %+v", st)
	}
	if n := calls.Load(); n != 4 {
		t.Fatalf("server saw %d requests, want 3 failures + 1 success", n)
	}
}

// A non-idempotent POST must NOT be replayed on a transport error: the
// client cannot know whether the daemon admitted the job before the
// connection died.
func TestSubmitDoesNotRetryTransportErrors(t *testing.T) {
	ts, calls := flappingServer(t, 1000, nil)
	c := New(ts.URL)
	c.HTTP = ts.Client()
	if _, err := c.Submit(context.Background(), api.RunRequest{}); err == nil {
		t.Fatal("Submit through dead server succeeded")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("non-idempotent POST attempted %d times, want 1", n)
	}
}

// Retries < 0 disables retrying entirely — the cluster standby's
// failure detector wants the raw error immediately.
func TestNegativeRetriesDisablesBackoff(t *testing.T) {
	ts, calls := flappingServer(t, 1000, nil)
	c := New(ts.URL)
	c.HTTP = ts.Client()
	c.Retries = -1
	start := time.Now()
	if _, err := c.Get(context.Background(), "j1", false); err == nil {
		t.Fatal("Get against dead server succeeded")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("Retries=-1 still attempted %d times", n)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Retries=-1 spent %v backing off", d)
	}
}

// A bounded retry budget gives up once exhausted.
func TestRetriesExhaust(t *testing.T) {
	ts, calls := flappingServer(t, 1000, nil)
	c := New(ts.URL)
	c.HTTP = ts.Client()
	c.Retries = 2
	if _, err := c.Get(context.Background(), "j1", false); err == nil {
		t.Fatal("Get against dead server succeeded")
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("attempted %d times, want initial + 2 retries", n)
	}
}

// Context cancellation is the caller's decision and is never retried.
func TestContextCancelNotRetried(t *testing.T) {
	ts, calls := flappingServer(t, 1000, nil)
	c := New(ts.URL)
	c.HTTP = ts.Client()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, "j1", false); err == nil {
		t.Fatal("Get with cancelled context succeeded")
	}
	if n := calls.Load(); n > 1 {
		t.Fatalf("cancelled request retried %d times", n)
	}
}

func TestTransientDelayCaps(t *testing.T) {
	if d := transientDelay(0); d != 25*time.Millisecond {
		t.Fatalf("first delay %v", d)
	}
	if d := transientDelay(1); d != 50*time.Millisecond {
		t.Fatalf("second delay %v", d)
	}
	for i := 5; i < 64; i++ {
		if d := transientDelay(i); d != 500*time.Millisecond {
			t.Fatalf("attempt %d delay %v, want cap", i, d)
		}
	}
}

func TestStatusCode(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"nope"}`, http.StatusNotFound)
	}))
	t.Cleanup(ts.Close)
	c := New(ts.URL)
	c.HTTP = ts.Client()
	c.Retries = -1
	_, err := c.Get(context.Background(), "jX", false)
	if err == nil {
		t.Fatal("expected 404 error")
	}
	if got := StatusCode(err); got != http.StatusNotFound {
		t.Fatalf("StatusCode = %d, want 404", got)
	}
	if got := StatusCode(context.Canceled); got != -1 {
		t.Fatalf("StatusCode(foreign error) = %d, want -1", got)
	}
}

func TestJitteredRange(t *testing.T) {
	d := 100 * time.Millisecond
	for r := uint64(0); r < 1000; r++ {
		got := jittered(d, r)
		if got < d/2 || got >= d {
			t.Fatalf("jittered(%v, %d) = %v, want [%v, %v)", d, r, got, d/2, d)
		}
	}
	// Degenerate delays pass through unchanged: jitter only ever
	// shortens a real backoff, never stretches a zero one.
	if got := jittered(0, 42); got != 0 {
		t.Errorf("jittered(0) = %v", got)
	}
	if got := jittered(1, 42); got != 1 {
		t.Errorf("jittered(1ns) = %v", got)
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	draw := func(seed uint64, n int) []uint64 {
		c := &Client{JitterSeed: seed}
		out := make([]uint64, n)
		for i := range out {
			out[i] = c.nextJitter()
		}
		return out
	}
	a, b := draw(7, 16), draw(7, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d: %d != %d", i, a[i], b[i])
		}
	}
	c := draw(8, 16)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical streams")
	}
	// An unseeded client still jitters (auto-derived seed).
	un := &Client{}
	if x, y := un.nextJitter(), un.nextJitter(); x == y {
		t.Error("auto-seeded stream repeated immediately")
	}
}
