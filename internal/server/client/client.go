// Package client is the thin HTTP client for the svmd experiment
// service: the piece both CLIs use in -server mode.  It speaks the
// api package's wire types, honors the daemon's explicit backpressure
// (429 + Retry-After triggers a bounded, context-aware retry), and
// otherwise stays deliberately dumb — spec construction, speedup math
// and formatting all live with the caller, exactly as in local mode.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"swsm/internal/explore"
	"swsm/internal/server/api"
)

// Client talks to one svmd daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:7099".
	BaseURL string
	// HTTP is the transport (http.DefaultClient if nil).
	HTTP *http.Client
	// Retries bounds re-submissions after 429 responses (default 10).
	Retries int
	// JitterSeed seeds the deterministic backoff jitter (tests pin it;
	// 0 derives a per-client seed from the clock and a process-global
	// counter).  Jitter spreads every retry delay over [d/2, d) so the
	// explore optimizer's fan-out — dozens of clients told "Retry-After:
	// 1" by the same busy daemon in the same instant — decorrelates
	// instead of stampeding back in lockstep.
	JitterSeed uint64

	jitter atomic.Uint64 // splitmix64 state, lazily seeded
}

// New builds a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is a non-2xx response.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("svmd: %s (HTTP %d)", e.Msg, e.Status)
}

// do performs one request, decoding a JSON body into out (ignored when
// nil) and mapping non-2xx responses to *apiError.  Transport-level
// failures on idempotent requests (connection refused or reset while a
// daemon restarts, for example) surface as retryable errors so
// withBackoff can reconnect; non-idempotent requests fail immediately —
// the caller knows whether its POST is safe to repeat.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	return c.doRetryable(ctx, method, path, body, out,
		method == http.MethodGet || method == http.MethodHead)
}

func (c *Client) doRetryable(ctx context.Context, method, path string, body, out any, idempotent bool) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// The daemon content-negotiates /metrics (Prometheus text by
	// default); this client always speaks the JSON API.
	req.Header.Set("Accept", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// A cancelled context is the caller's decision, never retried.
		if idempotent && ctx.Err() == nil {
			return &backoffError{
				apiError:  &apiError{Status: 0, Msg: err.Error()},
				transient: true,
			}
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		ae := &apiError{Status: resp.StatusCode, Msg: msg}
		if resp.StatusCode == http.StatusTooManyRequests {
			if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
				return &backoffError{apiError: ae, after: time.Duration(sec) * time.Second}
			}
			return &backoffError{apiError: ae, after: time.Second}
		}
		return ae
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// backoffError wraps a retryable failure: a 429 with the daemon's
// requested delay, or (transient) a transport error on an idempotent
// request, retried on a capped exponential schedule.
type backoffError struct {
	*apiError
	after     time.Duration
	transient bool
}

func (e *backoffError) Unwrap() error { return e.apiError }

// StatusCode extracts the HTTP status from an error this client
// returned: 0 for transport-level failures, -1 for errors that are not
// the client's.  The cluster worker agent routes on it (404 = job
// unknown here, drop; 503 = wrong coordinator, rotate).
func StatusCode(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.Status
	}
	return -1
}

// jitterClients decorrelates auto-derived seeds of clients created in
// the same clock tick (the explore fan-out case).
var jitterClients atomic.Uint64

// splitmix64 is the finalizer of the splitmix64 generator (same mix the
// fault layer and the explore search use).
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// nextJitter draws the client's next jitter word: a lock-free
// splitmix64 stream seeded once per client.
func (c *Client) nextJitter() uint64 {
	for {
		s := c.jitter.Load()
		if s == 0 {
			seed := c.JitterSeed
			if seed == 0 {
				seed = uint64(time.Now().UnixNano()) + jitterClients.Add(1)<<32
			}
			s = seed*0x9e3779b97f4a7c15 + 0x9e3779b97f4a7c15
			if s == 0 {
				s = 0x9e3779b97f4a7c15
			}
			if !c.jitter.CompareAndSwap(0, s) {
				continue
			}
		}
		next := s + 0x9e3779b97f4a7c15
		if next == 0 { // state 0 means "unseeded"; skip over it
			next = 0x9e3779b97f4a7c15
		}
		if c.jitter.CompareAndSwap(s, next) {
			return splitmix64(s)
		}
	}
}

// jittered spreads a backoff delay over [d/2, d): never longer than the
// daemon asked for, never synchronized with other clients.
func jittered(d time.Duration, r uint64) time.Duration {
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(r%uint64(half))
}

// transientDelay is the capped exponential schedule for reconnects:
// 25ms, 50ms, 100ms, ... capped at 500ms.
func transientDelay(attempt int) time.Duration {
	if attempt > 5 { // 25ms<<5 already exceeds the cap; avoid shift overflow
		return 500 * time.Millisecond
	}
	d := 25 * time.Millisecond << uint(attempt)
	if d > 500*time.Millisecond {
		return 500 * time.Millisecond
	}
	return d
}

// withBackoff retries fn after daemon-directed (429 Retry-After) or
// transport-level (capped exponential) backoff, bounded by Retries and
// ctx.  Retries < 0 disables retrying entirely — the cluster standby's
// failure detector wants the raw error, fast.
func (c *Client) withBackoff(ctx context.Context, fn func() error) error {
	retries := c.Retries
	if retries == 0 {
		retries = 10
	}
	for attempt := 0; ; attempt++ {
		err := fn()
		be, ok := err.(*backoffError)
		if !ok || attempt >= retries {
			return err
		}
		delay := be.after
		if be.transient {
			delay = transientDelay(attempt)
		}
		delay = jittered(delay, c.nextJitter())
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Run submits a run and blocks until it reaches a terminal state,
// retrying on backpressure.
func (c *Client) Run(ctx context.Context, req api.RunRequest) (*api.RunStatus, error) {
	var st api.RunStatus
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodPost, "/runs?wait=1", req, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Submit enqueues a run without waiting.
func (c *Client) Submit(ctx context.Context, req api.RunRequest) (*api.RunStatus, error) {
	var st api.RunStatus
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodPost, "/runs", req, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Get fetches a job's status; wait blocks until it is terminal.  As an
// idempotent GET it retries through transient connection errors (the
// daemon restarting under the request) with capped backoff.
func (c *Client) Get(ctx context.Context, id string, wait bool) (*api.RunStatus, error) {
	path := "/runs/" + url.PathEscape(id)
	if wait {
		path += "?wait=1"
	}
	var st api.RunStatus
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodGet, path, nil, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// GetSweep fetches a sweep's progress (idempotent; retried like Get).
func (c *Client) GetSweep(ctx context.Context, id string) (*api.SweepStatus, error) {
	var st api.SweepStatus
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodGet, "/sweeps/"+url.PathEscape(id), nil, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) (*api.RunStatus, error) {
	var st api.RunStatus
	if err := c.do(ctx, http.MethodDelete, "/runs/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Sweep submits a batch and blocks until every point is terminal,
// retrying whole-batch admission on backpressure.
func (c *Client) Sweep(ctx context.Context, req api.SweepRequest) (*api.SweepStatus, error) {
	var st api.SweepStatus
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodPost, "/sweeps?wait=1", req, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Trace fetches a completed job's stitched Chrome/Perfetto timeline —
// the daemon's wall-clock lifecycle spans for the job with the
// simulator's deterministic event trace anchored beneath them — and
// copies it to w (it is a trace_event JSON document, typically saved to
// a file and loaded in Perfetto).
func (c *Client) Trace(ctx context.Context, id string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/runs/"+url.PathEscape(id)+"/trace", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &apiError{Status: resp.StatusCode, Msg: msg}
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (*api.Metrics, error) {
	var m api.Metrics
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	})
	if err != nil {
		return nil, err
	}
	return &m, nil
}

// Health fetches the daemon's liveness/drain state.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodGet, "/healthz", nil, &h)
	})
	if err != nil {
		return nil, err
	}
	return &h, nil
}

// ---------------------------------------------------------------------------
// Cluster protocol: the worker agent's side of registration, job
// leasing and completion, and the standby's log tail.  Join, Lease and
// Complete are idempotent by protocol design (a replayed join re-
// registers, a replayed lease renews, a replayed complete is discarded
// as a duplicate), so they opt in to transient-error retry even though
// they are POSTs.

// Join registers a worker with the coordinator.
func (c *Client) Join(ctx context.Context, req api.ClusterJoinRequest) (*api.ClusterJoinResponse, error) {
	var resp api.ClusterJoinResponse
	err := c.withBackoff(ctx, func() error {
		return c.doRetryable(ctx, http.MethodPost, "/cluster/join", req, &resp, true)
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Lease requests jobs (and renews held leases; a Max of 0 is a pure
// heartbeat).
func (c *Client) Lease(ctx context.Context, req api.ClusterLeaseRequest) (*api.ClusterLeaseResponse, error) {
	var resp api.ClusterLeaseResponse
	err := c.withBackoff(ctx, func() error {
		return c.doRetryable(ctx, http.MethodPost, "/cluster/lease", req, &resp, true)
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Complete reports a leased job's terminal result.
func (c *Client) Complete(ctx context.Context, req api.ClusterCompleteRequest) (*api.ClusterCompleteResponse, error) {
	var resp api.ClusterCompleteResponse
	err := c.withBackoff(ctx, func() error {
		return c.doRetryable(ctx, http.MethodPost, "/cluster/complete", req, &resp, true)
	})
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// PollLog tails the coordinator's replicated log from seq, long-polling
// when wait is true.  No automatic retry: the standby's failure
// detector times the silence itself.
func (c *Client) PollLog(ctx context.Context, from int64, wait bool) (*api.ClusterLogResponse, error) {
	path := fmt.Sprintf("/cluster/log?from=%d", from)
	if wait {
		path += "&wait=1"
	}
	var resp api.ClusterLogResponse
	if err := c.doRetryable(ctx, http.MethodGet, path, nil, &resp, false); err != nil {
		return nil, err
	}
	return &resp, nil
}

// ClusterStatus fetches the coordinator's membership and scheduling
// snapshot.
func (c *Client) ClusterStatus(ctx context.Context) (*api.ClusterStatus, error) {
	var st api.ClusterStatus
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodGet, "/cluster/status", nil, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// SubmitExplore starts an exploration without waiting, retrying on
// backpressure (429 at the exploration concurrency limit).
func (c *Client) SubmitExplore(ctx context.Context, req explore.Request) (*explore.Status, error) {
	var st explore.Status
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodPost, "/explore", req, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// GetExplore fetches an exploration's status; wait blocks until it is
// terminal (idempotent, so it rides through daemon hiccups with capped
// backoff).
func (c *Client) GetExplore(ctx context.Context, id string, wait bool) (*explore.Status, error) {
	path := "/explore/" + url.PathEscape(id)
	if wait {
		path += "?wait=1"
	}
	var st explore.Status
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodGet, path, nil, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Explore submits an exploration and blocks until it reaches a terminal
// state: the submit is a short non-idempotent POST, the long wait an
// idempotent GET — so a connection lost mid-search resumes watching
// instead of double-submitting.
func (c *Client) Explore(ctx context.Context, req explore.Request) (*explore.Status, error) {
	st, err := c.SubmitExplore(ctx, req)
	if err != nil {
		return nil, err
	}
	for st.State == explore.StateRunning {
		if st, err = c.GetExplore(ctx, st.ID, true); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// CancelExplore requests cancellation of a running exploration.
func (c *Client) CancelExplore(ctx context.Context, id string) (*explore.Status, error) {
	var st explore.Status
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodDelete, "/explore/"+url.PathEscape(id), nil, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}
