// Package client is the thin HTTP client for the svmd experiment
// service: the piece both CLIs use in -server mode.  It speaks the
// api package's wire types, honors the daemon's explicit backpressure
// (429 + Retry-After triggers a bounded, context-aware retry), and
// otherwise stays deliberately dumb — spec construction, speedup math
// and formatting all live with the caller, exactly as in local mode.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"swsm/internal/server/api"
)

// Client talks to one svmd daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://127.0.0.1:7099".
	BaseURL string
	// HTTP is the transport (http.DefaultClient if nil).
	HTTP *http.Client
	// Retries bounds re-submissions after 429 responses (default 10).
	Retries int
}

// New builds a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError is a non-2xx response.
type apiError struct {
	Status int
	Msg    string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("svmd: %s (HTTP %d)", e.Msg, e.Status)
}

// do performs one request, decoding a JSON body into out (ignored when
// nil) and mapping non-2xx responses to *apiError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// The daemon content-negotiates /metrics (Prometheus text by
	// default); this client always speaks the JSON API.
	req.Header.Set("Accept", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		ae := &apiError{Status: resp.StatusCode, Msg: msg}
		if resp.StatusCode == http.StatusTooManyRequests {
			if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
				return &backoffError{apiError: ae, after: time.Duration(sec) * time.Second}
			}
			return &backoffError{apiError: ae, after: time.Second}
		}
		return ae
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// backoffError wraps a 429 with the daemon's requested delay.
type backoffError struct {
	*apiError
	after time.Duration
}

// withBackoff retries fn after daemon-directed backoff, bounded by
// Retries and ctx.
func (c *Client) withBackoff(ctx context.Context, fn func() error) error {
	retries := c.Retries
	if retries <= 0 {
		retries = 10
	}
	for attempt := 0; ; attempt++ {
		err := fn()
		be, ok := err.(*backoffError)
		if !ok || attempt >= retries {
			return err
		}
		select {
		case <-time.After(be.after):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Run submits a run and blocks until it reaches a terminal state,
// retrying on backpressure.
func (c *Client) Run(ctx context.Context, req api.RunRequest) (*api.RunStatus, error) {
	var st api.RunStatus
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodPost, "/runs?wait=1", req, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Submit enqueues a run without waiting.
func (c *Client) Submit(ctx context.Context, req api.RunRequest) (*api.RunStatus, error) {
	var st api.RunStatus
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodPost, "/runs", req, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Get fetches a job's status; wait blocks until it is terminal.
func (c *Client) Get(ctx context.Context, id string, wait bool) (*api.RunStatus, error) {
	path := "/runs/" + url.PathEscape(id)
	if wait {
		path += "?wait=1"
	}
	var st api.RunStatus
	if err := c.do(ctx, http.MethodGet, path, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) (*api.RunStatus, error) {
	var st api.RunStatus
	if err := c.do(ctx, http.MethodDelete, "/runs/"+url.PathEscape(id), nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Sweep submits a batch and blocks until every point is terminal,
// retrying whole-batch admission on backpressure.
func (c *Client) Sweep(ctx context.Context, req api.SweepRequest) (*api.SweepStatus, error) {
	var st api.SweepStatus
	err := c.withBackoff(ctx, func() error {
		return c.do(ctx, http.MethodPost, "/sweeps?wait=1", req, &st)
	})
	if err != nil {
		return nil, err
	}
	return &st, nil
}

// Trace fetches a completed job's stitched Chrome/Perfetto timeline —
// the daemon's wall-clock lifecycle spans for the job with the
// simulator's deterministic event trace anchored beneath them — and
// copies it to w (it is a trace_event JSON document, typically saved to
// a file and loaded in Perfetto).
func (c *Client) Trace(ctx context.Context, id string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.BaseURL+"/runs/"+url.PathEscape(id)+"/trace", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			msg = e.Error
		}
		return &apiError{Status: resp.StatusCode, Msg: msg}
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (*api.Metrics, error) {
	var m api.Metrics
	if err := c.do(ctx, http.MethodGet, "/metrics", nil, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Health fetches the daemon's liveness/drain state.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}
