// Package server implements svmd, the experiment service: a long-lived
// HTTP/JSON daemon that executes simulation runs the way an inference
// server executes requests — admitted through a bounded queue,
// deduplicated against identical in-flight work, answered from a
// persistent content-addressed result store when warm, and observable
// through SSE progress events and a metrics endpoint.
//
// The daemon layers three caches, cheapest first:
//
//  1. The persistent store (internal/store), keyed by the stable
//     versioned RunSpec content key — survives restarts.
//  2. The in-process memoization pool (harness/runner) underneath the
//     session — deduplicates everything the daemon computed this
//     lifetime, including sequential baselines shared across requests.
//  3. Single-flight job coalescing at the HTTP layer — N identical
//     concurrent POSTs attach to one job and therefore one simulation.
//
// Admission control is explicit: when the bounded queue is full the
// daemon answers 429 with Retry-After rather than buffering without
// bound, and during drain it answers 503 while in-flight work finishes.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"swsm/internal/apps"
	"swsm/internal/explore"
	"swsm/internal/harness"
	"swsm/internal/harness/runner"
	"swsm/internal/obs"
	"swsm/internal/server/api"
	"swsm/internal/store"

	// The daemon serves the full application suite.
	_ "swsm/internal/apps/barnes"
	_ "swsm/internal/apps/fft"
	_ "swsm/internal/apps/lu"
	_ "swsm/internal/apps/ocean"
	_ "swsm/internal/apps/radix"
	_ "swsm/internal/apps/raytrace"
	_ "swsm/internal/apps/volrend"
	_ "swsm/internal/apps/water"
)

// Version identifies the service wire protocol; it is reported by
// /healthz and is independent of harness.KeyVersion.
const Version = "svmd/1"

// Config parameterizes a Server.
type Config struct {
	// Parallel bounds concurrently executing simulations (0 = one per
	// CPU, via the harness session default).
	Parallel int
	// QueueDepth bounds admitted-but-not-running jobs; a full queue
	// rejects submissions with 429 (0 = 4x the worker count).
	QueueDepth int
	// StoreDir is the persistent result store's directory ("" disables
	// persistence — useful in tests, pointless in production).
	StoreDir string
	// StoreMaxBytes bounds the store's payload bytes (0 = store default).
	StoreMaxBytes int64
	// Logger receives the daemon's structured job and service logs (nil
	// disables service logging entirely; the instrumented paths are
	// nil-checked, never defaulted to a discarding handler).
	Logger *slog.Logger
	// SLO is the per-job execution-latency objective.  A job whose
	// wall-clock execution exceeds it counts an svmd_slo_breaches_total
	// and triggers a flight-recorder dump (0 disables the check).
	SLO time.Duration
	// DebugDir receives flight-recorder dumps — the last-N lifecycle
	// records plus a short CPU profile, written when a job fails or
	// breaches the SLO.  "" disables dumping to disk; the in-memory ring
	// still records.
	DebugDir string
	// ExploreLimit bounds concurrently running /explore searches
	// (default 2).  Each exploration's point simulations still queue
	// through the ordinary job scheduler; this only caps how many
	// search drivers compete for it.
	ExploreLimit int
}

// Submission errors the HTTP layer maps to status codes.
var (
	// ErrDraining rejects submissions while the daemon drains (503).
	ErrDraining = errors.New("server draining")
	// ErrQueueFull rejects submissions when the admission queue is at
	// capacity (429 + Retry-After).
	ErrQueueFull = errors.New("job queue full")
)

// job is one scheduled simulation (or store lookup).  Mutable fields
// are guarded by Server.mu; done is closed exactly once when the job
// reaches a terminal state.
type job struct {
	id   string
	key  string // spec content key (store address)
	ckey string // coalescing key (content key + request shape)
	req  api.RunRequest

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	state    string
	cached   bool
	row      *harness.RunRow
	err      error
	watchers int  // wait=1 requests currently parked on done
	detached bool // survives watcher disconnects (async submit, sweeps)
	enqueued time.Time
	started  time.Time
	wall     time.Duration
	spans    *obs.Spans // wall-clock lifecycle spans (queue/sim/store/respond)

	sweeps []*sweepState
}

type sweepState struct {
	id   string
	jobs []*job
}

// Server is the experiment service.  Construct with New, serve
// Handler(), stop with Drain.
type Server struct {
	cfg    Config
	ses    *harness.Session
	st     *store.Store
	bus    *EventBus
	met    *svmdMetrics
	log    *slog.Logger // nil = service logging disabled
	flight *obs.Flight
	expl   *explore.Manager
	// runFn executes one spec; tests substitute it to make scheduling
	// behavior (backpressure, cancellation) deterministic.
	runFn func(context.Context, harness.RunSpec) (*harness.Result, error)

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu         sync.Mutex
	jobs       map[string]*job
	inflight   map[string]*job // coalescing key -> queued/running job
	sweeps     map[string]*sweepState
	stateCount map[string]int
	nextJob    int64
	nextSweep  int64
	inFlight   int // jobs currently executing on a worker
	draining   bool

	queue chan *job
	wg    sync.WaitGroup
	start time.Time
}

// New builds a Server and starts its workers.
func New(cfg Config) (*Server, error) {
	ses := harness.NewSession(cfg.Parallel)
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * ses.Parallelism()
	}
	var st *store.Store
	if cfg.StoreDir != "" {
		var err error
		if st, err = store.Open(cfg.StoreDir, cfg.StoreMaxBytes); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	met := newSvmdMetrics(start)
	s := &Server{
		cfg:        cfg,
		ses:        ses,
		st:         st,
		bus:        NewEventBus(met.sseEvents, met.sseDropped),
		met:        met,
		log:        cfg.Logger,
		flight:     obs.NewFlight(obs.DefaultFlightRecords, cfg.DebugDir, time.Second),
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
		inflight:   make(map[string]*job),
		sweeps:     make(map[string]*sweepState),
		stateCount: make(map[string]int),
		queue:      make(chan *job, cfg.QueueDepth),
		start:      start,
	}
	s.expl = newExploreManager(s, cfg.ExploreLimit)
	met.registerServer(s)
	ses.SetObserver(met)
	if st != nil {
		st.SetLogger(cfg.Logger)
	}
	s.runFn = func(ctx context.Context, spec harness.RunSpec) (*harness.Result, error) {
		return s.ses.RunCtx(ctx, spec)
	}
	for i := 0; i < ses.Parallelism(); i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.exec(j)
			}
		}()
	}
	return s, nil
}

// RunnerStats exposes the in-process memoization counters (simulations
// actually executed, memo hits, coalesced waits).
func (s *Server) RunnerStats() runner.Stats { return s.ses.Stats() }

// StoreStats exposes the persistent store's counters (zero value when
// persistence is disabled).
func (s *Server) StoreStats() store.Stats {
	if s.st == nil {
		return store.Stats{}
	}
	return s.st.Stats()
}

// ValidateRequest rejects requests the daemon cannot (or will not)
// serve before they consume a queue slot.  The cluster coordinator
// applies the same gate at its own admission edge, so a bad spec is
// rejected before it is dispatched to a worker.
func ValidateRequest(req api.RunRequest) error {
	spec := req.Spec
	if _, err := apps.Lookup(spec.App); err != nil {
		return err
	}
	switch spec.Protocol {
	case harness.HLRC, harness.LRC, harness.SC, harness.Ideal:
	default:
		return fmt.Errorf("unknown protocol %q", spec.Protocol)
	}
	if spec.Procs < 1 || spec.Procs > 64 {
		return fmt.Errorf("procs %d outside [1, 64]", spec.Procs)
	}
	if spec.Scale < apps.Tiny || spec.Scale > apps.Large {
		return fmt.Errorf("unknown scale %d", spec.Scale)
	}
	if err := spec.Comm.Validate(); err != nil {
		return err
	}
	if err := spec.Fault.Validate(); err != nil {
		return err
	}
	if err := spec.Hetero.Validate(); err != nil {
		return err
	}
	if spec.Trace {
		return errors.New("traced runs are not served remotely: trace capture is an in-process artifact (run svmsim -trace locally)")
	}
	return nil
}

// SetRunFunc substitutes the function that executes one spec (the
// default runs it through the memoized session).  It is the seam the
// cluster tests use to make execution latency deterministic — install
// it before the server receives traffic.
func (s *Server) SetRunFunc(fn func(context.Context, harness.RunSpec) (*harness.Result, error)) {
	s.runFn = fn
}

// SimsInFlight reports how many simulations currently occupy a
// memoization-pool slot; Parallelism() - SimsInFlight() is the node's
// idle capacity, which the cluster worker agent uses to size its lease
// requests.
func (s *Server) SimsInFlight() int { return s.ses.InFlight() }

// Parallelism reports the concurrent-simulation bound.
func (s *Server) Parallelism() int { return s.ses.Parallelism() }

// Execute runs one request end-to-end through the daemon's normal
// admission path — store probe, memoized session, single-flight
// coalescing, write-back, metrics and SSE events — and returns the
// terminal row.  It is the entry point the cluster worker agent uses to
// run leased jobs on the local engine: a leased job is indistinguishable
// from a locally submitted one, so the worker's persistent store warms
// exactly as if the spec had been requested directly (that store is the
// cluster's distributed cache tier).  The job is detached: ctx
// cancellation abandons the wait, not the job.
func (s *Server) Execute(ctx context.Context, req api.RunRequest) (*harness.RunRow, bool, error) {
	j, _, err := s.submit(req, true)
	if err != nil {
		return nil, false, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state == api.StateDone {
		return j.row, j.cached, nil
	}
	if j.err != nil {
		return nil, false, j.err
	}
	return nil, false, fmt.Errorf("job %s terminal in state %s without error", j.id, j.state)
}

// submit admits a request: coalesce onto an identical in-flight job, or
// create and enqueue a new one (created reports which).  detached jobs
// survive watcher disconnects (async submissions, sweep points).
func (s *Server) submit(req api.RunRequest, detached bool) (j *job, created bool, err error) {
	key := req.Spec.Key()
	ckey := key
	if req.Speedup {
		ckey += "+speedup"
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, ErrDraining
	}
	if j, ok := s.inflight[ckey]; ok {
		if detached {
			j.detached = true
		}
		s.met.coalesced.Inc()
		return j, false, nil
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j = &job{
		key: key, ckey: ckey, req: req,
		ctx: ctx, cancel: cancel,
		done:     make(chan struct{}),
		state:    api.StateQueued,
		detached: detached,
		enqueued: time.Now(),
		spans:    obs.NewSpans(),
	}
	select {
	case s.queue <- j:
	default:
		cancel()
		return nil, false, ErrQueueFull
	}
	s.nextJob++
	j.id = fmt.Sprintf("j%d", s.nextJob)
	// Annotate the job context for the layers below: every log line the
	// scheduler, harness, store or transport emits on behalf of this job
	// carries its ID.  A worker dequeuing j blocks on s.mu (held here)
	// before reading j.ctx, so the late annotation is safe.
	j.ctx = obs.WithJob(j.ctx, j.id)
	if s.log != nil {
		j.ctx = obs.WithLogger(j.ctx, s.log)
		s.log.LogAttrs(j.ctx, slog.LevelInfo, "job queued",
			slog.String("app", req.Spec.App),
			slog.String("protocol", string(req.Spec.Protocol)),
			slog.Int("procs", req.Spec.Procs),
			slog.Bool("speedup", req.Speedup),
			slog.Int("queueDepth", len(s.queue)))
	}
	s.met.created.Inc()
	s.flight.Record(j.id, api.StateQueued, req.Spec.App+"/"+string(req.Spec.Protocol))
	s.jobs[j.id] = j
	s.inflight[ckey] = j
	s.stateCount[api.StateQueued]++
	s.bus.Publish(api.Event{Type: "jobQueued", Job: statusLocked(j)})
	return j, true, nil
}

// exec runs one job on a worker: store lookup, then simulation through
// the memoized session, then store write-back.
func (s *Server) exec(j *job) {
	s.mu.Lock()
	if j.state != api.StateQueued { // canceled while queued
		s.mu.Unlock()
		return
	}
	if err := j.ctx.Err(); err != nil {
		s.finishLocked(j, nil, false, err)
		s.mu.Unlock()
		return
	}
	s.setStateLocked(j, api.StateRunning)
	s.inFlight++
	j.started = time.Now()
	j.spans.Add(obs.SpanQueue, j.enqueued, j.started)
	s.met.queueWait.Observe(j.started.Sub(j.enqueued).Seconds())
	s.flight.Record(j.id, api.StateRunning, "")
	s.bus.Publish(api.Event{Type: "jobStarted", Job: statusLocked(j)})
	s.mu.Unlock()

	row, cached, err := s.resolve(j.ctx, j.req.Spec, j.spans, "")
	if err == nil && j.req.Speedup {
		spec := j.req.Spec
		var base *harness.RunRow
		base, _, err = s.resolve(j.ctx,
			harness.BaselineSpec(spec.App, spec.Scale, spec.CacheEnabled), j.spans, "baseline.")
		if err == nil {
			r := row.WithSpeedup(base.Cycles)
			row = &r
		}
	}

	s.mu.Lock()
	s.inFlight--
	j.wall = time.Since(j.started)
	s.finishLocked(j, row, cached, err)
	s.mu.Unlock()
	s.observeTerminal(j)
}

// observeTerminal runs the post-terminal observability work that must
// not hold s.mu: latency accounting against the SLO, the per-job
// outcome log line, and (on failure or SLO breach) an async
// flight-recorder dump.  j is terminal, so its fields are stable.
func (s *Server) observeTerminal(j *job) {
	s.met.runDur.Observe(j.wall.Seconds())
	breach := s.cfg.SLO > 0 && j.wall > s.cfg.SLO
	if breach {
		s.met.sloBreaches.Inc()
	}
	if s.log != nil {
		lvl, msg := slog.LevelInfo, "job "+j.state
		if j.state == api.StateFailed {
			lvl = slog.LevelWarn
		}
		attrs := []slog.Attr{
			slog.String("state", j.state),
			slog.Duration("wall", j.wall),
			slog.Bool("cached", j.cached),
		}
		if j.err != nil {
			attrs = append(attrs, slog.String("error", j.err.Error()))
		}
		if breach {
			attrs = append(attrs, slog.Duration("slo", s.cfg.SLO))
		}
		s.log.LogAttrs(j.ctx, lvl, msg, attrs...)
	}
	if j.state == api.StateFailed || breach {
		reason := "job failed"
		if j.state != api.StateFailed {
			reason = "slo breach"
		}
		go func() {
			if path, _ := s.flight.Dump(reason, j.id); path != "" {
				s.met.flightDumps.Inc()
				if s.log != nil {
					s.log.LogAttrs(j.ctx, slog.LevelInfo, "flight recorder dumped",
						slog.String("path", path), slog.String("reason", reason))
				}
			}
		}()
	}
}

// resolve produces the row for one spec: persistent store first, then
// the memoized session, writing fresh results back to the store.  Each
// stage is timed into the job's span recorder (names prefixed for the
// speedup baseline's second resolve) and the store histograms.
func (s *Server) resolve(ctx context.Context, spec harness.RunSpec, sp *obs.Spans, prefix string) (*harness.RunRow, bool, error) {
	key := spec.Key()
	if s.st != nil {
		t0 := time.Now()
		payload, ok := s.st.Get(key)
		s.met.storeGet.ObserveSince(t0)
		sp.Add(prefix+obs.SpanStoreGet, t0, time.Now())
		if ok {
			var row harness.RunRow
			// A decodable row whose spec disagrees with the requested one
			// would mean a key collision or encoder drift; recompute.
			if err := json.Unmarshal(payload, &row); err == nil && row.Spec == spec {
				return &row, true, nil
			}
		}
	}
	t0 := time.Now()
	res, err := s.runFn(ctx, spec)
	sp.Add(prefix+obs.SpanSim, t0, time.Now())
	if err != nil {
		return nil, false, err
	}
	row := harness.NewRunRow(res)
	if s.st != nil {
		if payload, err := json.Marshal(row); err == nil {
			// Store damage must not fail the run; the next daemon just
			// recomputes.
			t0 := time.Now()
			_ = s.st.Put(key, payload)
			s.met.storePut.ObserveSince(t0)
			sp.Add(prefix+obs.SpanStorePut, t0, time.Now())
		}
	}
	return &row, false, nil
}

// finishLocked moves a job to its terminal state, publishes the
// transition and unparks watchers.  Caller holds s.mu.
func (s *Server) finishLocked(j *job, row *harness.RunRow, cached bool, err error) {
	respond := time.Now()
	switch {
	case err == nil:
		j.row = row
		j.cached = cached
		s.setStateLocked(j, api.StateDone)
		s.met.jobsDone.Inc()
		if row != nil {
			if n, ok := row.Counters["retransmits"]; ok && n > 0 {
				s.met.retransmits.Add(n)
				s.met.jobRetrans.Observe(float64(n))
			}
		}
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		j.err = err
		s.setStateLocked(j, api.StateCanceled)
		s.met.jobsCanceled.Inc()
	default:
		j.err = err
		s.setStateLocked(j, api.StateFailed)
		s.met.jobsFailed.Inc()
	}
	msg := ""
	if j.err != nil {
		msg = j.err.Error()
	}
	s.flight.Record(j.id, j.state, msg)
	delete(s.inflight, j.ckey)
	j.cancel()
	close(j.done)
	typ := map[string]string{
		api.StateDone:     "jobDone",
		api.StateFailed:   "jobFailed",
		api.StateCanceled: "jobCanceled",
	}[j.state]
	s.bus.Publish(api.Event{Type: typ, Job: statusLocked(j)})
	for _, sw := range j.sweeps {
		s.bus.Publish(api.Event{Type: "sweepProgress", Sweep: sweepStatusLocked(sw, false)})
	}
	j.spans.Add(obs.SpanRespond, respond, time.Now())
}

// cancelLocked cancels a queued job immediately; a running job has its
// context cancelled and reaches a terminal state through exec.  Caller
// holds s.mu; reports whether the job was still live.
func (s *Server) cancelLocked(j *job) bool {
	switch j.state {
	case api.StateQueued:
		s.finishLocked(j, nil, false, context.Canceled)
		return true
	case api.StateRunning:
		j.cancel()
		return true
	}
	return false
}

func (s *Server) setStateLocked(j *job, state string) {
	s.stateCount[j.state]--
	j.state = state
	s.stateCount[state]++
}

// waitJob parks until the job finishes or the watcher's request
// context is cancelled.  A queued job abandoned by its last watcher is
// cancelled — the client that wanted it is gone — unless it is detached.
func (s *Server) waitJob(ctx context.Context, j *job) error {
	s.mu.Lock()
	j.watchers++
	s.mu.Unlock()
	select {
	case <-j.done:
		s.mu.Lock()
		j.watchers--
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		j.watchers--
		if j.watchers == 0 && !j.detached && j.state == api.StateQueued {
			s.cancelLocked(j)
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// statusLocked snapshots a job.  Caller holds s.mu.
func statusLocked(j *job) *api.RunStatus {
	st := &api.RunStatus{
		ID: j.id, Key: j.key, State: j.state, Cached: j.cached, Row: j.row,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.wall > 0 {
		st.WallMS = j.wall.Milliseconds()
	}
	return st
}

func sweepStatusLocked(sw *sweepState, includePoints bool) *api.SweepStatus {
	st := &api.SweepStatus{ID: sw.id, Total: len(sw.jobs)}
	for _, j := range sw.jobs {
		switch j.state {
		case api.StateDone:
			st.Done++
		case api.StateFailed, api.StateCanceled:
			st.Failed++
		}
		if includePoints {
			st.Points = append(st.Points, *statusLocked(j))
		}
	}
	return st
}

// Metrics snapshots the daemon's observable state.
func (s *Server) Metrics() api.Metrics {
	s.mu.Lock()
	jobs := make(map[string]int, len(s.stateCount))
	for k, v := range s.stateCount {
		if v != 0 {
			jobs[k] = v
		}
	}
	m := api.Metrics{
		UptimeSec:  time.Since(s.start).Seconds(),
		Draining:   s.draining,
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		InFlight:   s.inFlight,
		Workers:    s.ses.Parallelism(),
		Jobs:       jobs,
	}
	s.mu.Unlock()
	m.Store = s.StoreStats()
	m.StoreHitRatio = m.Store.HitRatio()
	m.Runner = s.RunnerStats()
	m.Process = obs.ReadProcess(s.start)
	return m
}

// Drain gracefully stops the daemon: new submissions are rejected with
// ErrDraining, queued and running jobs finish normally, and if ctx
// expires first the remaining job contexts are cancelled (queued work
// aborts; a simulation that already started completes and is stored).
// Drain returns once all workers have exited; the store needs no
// explicit flush — every Put is already durable via temp-file + rename.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	if !already {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	if already {
		return errors.New("server: already draining")
	}
	s.bus.Publish(api.Event{Type: "drain"})

	// Stop the auto-tuner first: cancel running explorations and wait
	// for their drivers.  Drivers unpark promptly — their evaluator
	// waits select on the exploration context — while the point jobs
	// they already queued drain through the workers like any other job.
	s.expl.Shutdown()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.baseCancel()
		<-done
	}
	s.baseCancel()
	s.bus.Close()
	return err
}
