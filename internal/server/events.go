package server

import (
	"sync"

	"swsm/internal/obs"
	"swsm/internal/server/api"
)

// EventBus fans job/sweep lifecycle events out to SSE subscribers.
// Publishing never blocks the scheduler: a subscriber whose buffer is
// full loses frames (each frame carries a sequence number, so a
// consumer can detect the gap and reconcile via GET /runs).
type EventBus struct {
	mu     sync.Mutex
	seq    int64
	subs   map[chan api.Event]struct{}
	closed bool

	// published counts events entering the bus; dropped counts frames a
	// slow subscriber lost.  Both are nil-safe (tests build bare buses).
	published *obs.Counter
	dropped   *obs.Counter
}

// NewEventBus creates a bus; the counters may be nil (tests) or the
// owner's published/dropped instruments.  It is shared with the
// cluster coordinator, whose SSE endpoint fans in worker progress.
func NewEventBus(published, dropped *obs.Counter) *EventBus {
	return &EventBus{
		subs:      make(map[chan api.Event]struct{}),
		published: published,
		dropped:   dropped,
	}
}

// SubscriberCount reports currently connected subscribers.
func (b *EventBus) SubscriberCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Subscribe registers a consumer; the returned cancel must be called
// exactly once (idempotence is not needed: the SSE handler defers it).
func (b *EventBus) Subscribe() (<-chan api.Event, func()) {
	ch := make(chan api.Event, 64)
	b.mu.Lock()
	if b.closed {
		close(ch)
		b.mu.Unlock()
		return ch, func() {}
	}
	b.subs[ch] = struct{}{}
	b.mu.Unlock()
	return ch, func() {
		b.mu.Lock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
		b.mu.Unlock()
	}
}

// Publish stamps e with the next sequence number and fans it out,
// dropping frames to subscribers whose buffers are full.
func (b *EventBus) Publish(e api.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.seq++
	e.Seq = b.seq
	b.published.Inc()
	for ch := range b.subs {
		select {
		case ch <- e:
		default: // slow consumer: drop, the seq gap tells them
			b.dropped.Inc()
		}
	}
}

// Close terminates every subscriber stream (end of drain).
func (b *EventBus) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for ch := range b.subs {
		delete(b.subs, ch)
		close(ch)
	}
}
