package server

import (
	"time"

	"swsm/internal/obs"
)

// svmdMetrics bundles the daemon's Prometheus instruments: the
// wall-clock latency histograms of the job pipeline (queue wait, run
// duration, store traffic), lifetime counters, and scrape-time gauges
// bridged to state that already has a synchronized source of truth
// (queue depth, store stats, runner stats, the Go runtime).
//
// It also implements runner.Observer, so the memoization pool under the
// session reports per-simulation slot wait and run duration without the
// harness knowing about Prometheus.
type svmdMetrics struct {
	reg *obs.Registry

	queueWait  *obs.Histogram // enqueue -> worker pickup
	runDur     *obs.Histogram // worker pickup -> terminal state
	simSlot    *obs.Histogram // pool slot wait per executed simulation
	simDur     *obs.Histogram // simulation execution wall time
	storeGet   *obs.Histogram
	storePut   *obs.Histogram
	jobRetrans *obs.Histogram // simulated retransmissions per completed job

	jobsDone     *obs.Counter
	jobsFailed   *obs.Counter
	jobsCanceled *obs.Counter
	created      *obs.Counter
	coalesced    *obs.Counter
	sloBreaches  *obs.Counter
	retransmits  *obs.Counter
	sseEvents    *obs.Counter
	sseDropped   *obs.Counter
	flightDumps  *obs.Counter
}

func newSvmdMetrics(start time.Time) *svmdMetrics {
	reg := obs.NewRegistry()
	m := &svmdMetrics{reg: reg}

	m.queueWait = reg.Histogram("svmd_queue_wait_seconds",
		"Time jobs spend in the admission queue before a worker picks them up.",
		"", obs.DefBuckets)
	m.runDur = reg.Histogram("svmd_run_seconds",
		"Job execution wall time from worker pickup to terminal state (queue wait excluded).",
		"", obs.DefBuckets)
	m.simSlot = reg.Histogram("svmd_sim_slot_wait_seconds",
		"Time executed simulations wait for a memoization-pool worker slot.",
		"", obs.DefBuckets)
	m.simDur = reg.Histogram("svmd_sim_run_seconds",
		"Wall time of actually executed simulations (memo hits excluded).",
		"", obs.DefBuckets)
	m.storeGet = reg.Histogram("svmd_store_get_seconds",
		"Persistent result store lookup latency.", "", obs.DefBuckets)
	m.storePut = reg.Histogram("svmd_store_put_seconds",
		"Persistent result store write-back latency.", "", obs.DefBuckets)
	m.jobRetrans = reg.Histogram("svmd_job_retransmits",
		"Simulated transport retransmissions per completed job.",
		"", obs.CountBuckets)

	m.jobsDone = reg.Counter("svmd_jobs_total",
		"Jobs reaching a terminal state, by state.", `state="done"`)
	m.jobsFailed = reg.Counter("svmd_jobs_total",
		"Jobs reaching a terminal state, by state.", `state="failed"`)
	m.jobsCanceled = reg.Counter("svmd_jobs_total",
		"Jobs reaching a terminal state, by state.", `state="canceled"`)
	m.created = reg.Counter("svmd_submissions_total",
		"Admitted submissions, by whether they created a job or coalesced onto an in-flight one.",
		`kind="created"`)
	m.coalesced = reg.Counter("svmd_submissions_total",
		"Admitted submissions, by whether they created a job or coalesced onto an in-flight one.",
		`kind="coalesced"`)
	m.sloBreaches = reg.Counter("svmd_slo_breaches_total",
		"Jobs whose execution wall time exceeded the configured latency SLO.", "")
	m.retransmits = reg.Counter("svmd_retransmits_total",
		"Simulated transport retransmissions summed over completed jobs.", "")
	m.sseEvents = reg.Counter("svmd_sse_events_total",
		"Lifecycle events published to the SSE bus.", "")
	m.sseDropped = reg.Counter("svmd_sse_dropped_frames_total",
		"SSE frames dropped because a subscriber's buffer was full.", "")
	m.flightDumps = reg.Counter("svmd_flight_dumps_total",
		"Flight-recorder dumps written (job failures and SLO breaches).", "")

	obs.RegisterProcess(reg, start)
	return m
}

// registerServer adds the scrape-time gauges and bridged counters that
// read live server state.  Called once from New, before the server
// serves traffic; the callbacks take s.mu / the stats locks briefly and
// never block on job execution (s.mu is never held across a
// simulation).
func (m *svmdMetrics) registerServer(s *Server) {
	m.reg.GaugeFunc("svmd_queue_depth",
		"Jobs admitted but not yet picked up by a worker.", "",
		func() float64 { return float64(len(s.queue)) })
	m.reg.GaugeFunc("svmd_queue_capacity",
		"Admission queue capacity.", "",
		func() float64 { return float64(cap(s.queue)) })
	m.reg.GaugeFunc("svmd_inflight_jobs",
		"Jobs currently executing on workers.", "",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.inFlight)
		})
	m.reg.GaugeFunc("svmd_workers",
		"Worker (concurrent simulation) bound.", "",
		func() float64 { return float64(s.ses.Parallelism()) })
	m.reg.GaugeFunc("svmd_draining",
		"1 while the daemon drains, else 0.", "",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.draining {
				return 1
			}
			return 0
		})
	m.reg.GaugeFunc("svmd_sse_subscribers",
		"Connected SSE event-stream subscribers.", "",
		func() float64 { return float64(s.bus.SubscriberCount()) })

	storeStat := func(get func() int64) func() float64 {
		return func() float64 { return float64(get()) }
	}
	m.reg.CounterFunc("svmd_store_ops_total",
		"Persistent store traffic, by outcome.", `op="hit"`,
		storeStat(func() int64 { return s.StoreStats().Hits }))
	m.reg.CounterFunc("svmd_store_ops_total",
		"Persistent store traffic, by outcome.", `op="miss"`,
		storeStat(func() int64 { return s.StoreStats().Misses }))
	m.reg.CounterFunc("svmd_store_ops_total",
		"Persistent store traffic, by outcome.", `op="put"`,
		storeStat(func() int64 { return s.StoreStats().Puts }))
	m.reg.CounterFunc("svmd_store_ops_total",
		"Persistent store traffic, by outcome.", `op="eviction"`,
		storeStat(func() int64 { return s.StoreStats().Evictions }))
	m.reg.CounterFunc("svmd_store_ops_total",
		"Persistent store traffic, by outcome.", `op="corrupt"`,
		storeStat(func() int64 { return s.StoreStats().Corrupt }))
	m.reg.GaugeFunc("svmd_store_entries",
		"Resident persistent-store entries.", "",
		storeStat(func() int64 { return int64(s.StoreStats().Entries) }))
	m.reg.GaugeFunc("svmd_store_bytes",
		"Resident persistent-store payload bytes.", "",
		storeStat(func() int64 { return s.StoreStats().Bytes }))

	m.reg.CounterFunc("svmd_sim_total",
		"Memoization-pool traffic, by outcome.", `kind="run"`,
		storeStat(func() int64 { return s.RunnerStats().Runs }))
	m.reg.CounterFunc("svmd_sim_total",
		"Memoization-pool traffic, by outcome.", `kind="hit"`,
		storeStat(func() int64 { return s.RunnerStats().Hits }))
	m.reg.CounterFunc("svmd_sim_total",
		"Memoization-pool traffic, by outcome.", `kind="wait"`,
		storeStat(func() int64 { return s.RunnerStats().Waits }))
}

// RunStart / RunEnd implement runner.Observer for the session pool.
func (m *svmdMetrics) RunStart(queueWait time.Duration) {
	m.simSlot.Observe(queueWait.Seconds())
}

func (m *svmdMetrics) RunEnd(run time.Duration, err error) {
	m.simDur.Observe(run.Seconds())
}
