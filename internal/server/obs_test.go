package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"swsm/internal/harness"
	"swsm/internal/obs"
	"swsm/internal/server/api"
)

// scrape fetches /metrics in the Prometheus text exposition and parses
// it into sample lines (name{labels} -> value as string).
func scrape(t *testing.T, ts *httptest.Server) (string, map[string]string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q, want text/plain exposition", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := make(map[string]string)
	for _, line := range strings.Split(string(raw), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		samples[name] = value
	}
	return string(raw), samples
}

func sampleInt(t *testing.T, samples map[string]string, series string) int64 {
	t.Helper()
	v, ok := samples[series]
	if !ok {
		t.Fatalf("exposition has no series %q", series)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		t.Fatalf("series %q value %q: %v", series, v, err)
	}
	return int64(f)
}

// TestMetricsPrometheusExposition runs a real job and checks the scrape:
// well-formed exposition, job lifecycle counters, latency histograms
// with cumulative le buckets, process stats — plus the JSON snapshot
// still served under content negotiation.
func TestMetricsPrometheusExposition(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Parallel: 2})
	if _, err := c.Run(context.Background(), api.RunRequest{Spec: tinySpec(2)}); err != nil {
		t.Fatal(err)
	}

	raw, samples := scrape(t, ts)
	for _, want := range []string{
		"# HELP svmd_jobs_total ", "# TYPE svmd_jobs_total counter",
		"# TYPE svmd_queue_wait_seconds histogram",
		"# TYPE svmd_run_seconds histogram",
		"# TYPE svmd_store_get_seconds histogram",
		"# TYPE go_goroutines gauge",
	} {
		if !strings.Contains(raw, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if n := sampleInt(t, samples, `svmd_jobs_total{state="done"}`); n != 1 {
		t.Errorf(`svmd_jobs_total{state="done"} = %d, want 1`, n)
	}
	if n := sampleInt(t, samples, "svmd_run_seconds_count"); n != 1 {
		t.Errorf("svmd_run_seconds_count = %d, want 1", n)
	}
	if n := sampleInt(t, samples, "svmd_sim_run_seconds_count"); n != 1 {
		t.Errorf("svmd_sim_run_seconds_count = %d, want 1 (pool observer)", n)
	}
	// le buckets must be cumulative and end at +Inf == _count.
	var prev int64
	for _, b := range obs.DefBuckets {
		le := strconv.FormatFloat(b, 'g', -1, 64)
		n := sampleInt(t, samples, `svmd_run_seconds_bucket{le="`+le+`"}`)
		if n < prev {
			t.Errorf("bucket le=%s = %d below previous %d: not cumulative", le, n, prev)
		}
		prev = n
	}
	inf := sampleInt(t, samples, `svmd_run_seconds_bucket{le="+Inf"}`)
	if inf != sampleInt(t, samples, "svmd_run_seconds_count") {
		t.Errorf("+Inf bucket %d != count", inf)
	}
	if sampleInt(t, samples, "svmd_workers") != 2 {
		t.Error("svmd_workers gauge wrong")
	}
	if sampleInt(t, samples, "go_goroutines") < 1 {
		t.Error("go_goroutines implausible")
	}

	// Content negotiation: the JSON snapshot survives, now with process
	// stats.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics?format=json", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m api.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("JSON metrics did not decode: %v", err)
	}
	if m.Workers != 2 || m.Process.Goroutines < 1 || m.Process.HeapSysBytes == 0 {
		t.Errorf("JSON metrics = %+v", m)
	}
	// And the typed client (Accept: application/json) still works.
	cm, err := c.Metrics(context.Background())
	if err != nil || cm.Workers != 2 {
		t.Errorf("client.Metrics = %+v, %v", cm, err)
	}
}

// TestMetricsNeverBlocksQueue pins the liveness property under -race:
// with every worker parked and the queue full, /metrics (both formats)
// still answers promptly — scraping shares no lock with job execution.
func TestMetricsNeverBlocksQueue(t *testing.T) {
	_, ts, _, release := blockingServer(t, Config{Parallel: 1, QueueDepth: 1})
	r1 := postRun(t, ts, api.RunRequest{Spec: tinySpec(2)})
	r1.Body.Close()
	r2 := postRun(t, ts, api.RunRequest{Spec: tinySpec(4)})
	r2.Body.Close()

	cl := &http.Client{Timeout: 2 * time.Second}
	for _, path := range []string{"/metrics", "/metrics?format=json"} {
		resp, err := cl.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s blocked behind a stalled queue: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
	close(release)
}

// TestStitchedTrace fetches a completed job's stitched timeline and
// verifies both layers are present: the service lifecycle spans as
// process 0 and the simulator's deterministic events as process 1.
func TestStitchedTrace(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Parallel: 2})
	st, err := c.Run(context.Background(), api.RunRequest{Spec: tinySpec(2)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/runs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET trace = %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
			Name string `json:"name"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("stitched trace is not valid JSON: %v", err)
	}
	var service, sim int
	serviceSpans := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		switch e.Pid {
		case 0:
			service++
			serviceSpans[e.Name] = true
		case 1:
			sim++
		}
	}
	if service == 0 || sim == 0 {
		t.Fatalf("stitched trace layers: %d service spans, %d sim events — want both", service, sim)
	}
	for _, name := range []string{obs.SpanQueue, obs.SpanSim, obs.SpanRespond} {
		if !serviceSpans[name] {
			t.Errorf("service track missing %q span (have %v)", name, serviceSpans)
		}
	}

	// A queued/failed job has no trace.
	resp2, err := http.Get(ts.URL + "/runs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown job = %d, want 404", resp2.StatusCode)
	}
}

// TestInstrumentationPreservesResults pins the determinism contract:
// a fully instrumented daemon (logging, SLO accounting, flight
// recorder) returns byte-for-byte the same result row as an in-process
// uninstrumented run.
func TestInstrumentationPreservesResults(t *testing.T) {
	var logBuf bytes.Buffer
	_, _, c := newTestServer(t, Config{
		Parallel: 2,
		Logger:   obs.NewLogger(&logBuf, slog.LevelDebug, true),
		SLO:      time.Nanosecond, // every job breaches: exercises the SLO path too
		DebugDir: t.TempDir(),
	})
	spec := tinySpec(2)
	st, err := c.Run(context.Background(), api.RunRequest{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	localRow := harness.NewRunRow(res)
	remote, err := json.Marshal(st.Row)
	if err != nil {
		t.Fatal(err)
	}
	local, err := json.Marshal(&localRow)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(remote, local) {
		t.Errorf("instrumented row diverged from uninstrumented run:\nremote: %s\nlocal:  %s", remote, local)
	}

	// The log trail carries the job ID across layers.
	logs := logBuf.String()
	if !strings.Contains(logs, `"job":"`+st.ID+`"`) {
		t.Errorf("structured logs never mention job %s:\n%s", st.ID, logs)
	}
	for _, msg := range []string{"job queued", "simulate", "job done"} {
		if !strings.Contains(logs, msg) {
			t.Errorf("log trail missing %q:\n%s", msg, logs)
		}
	}
}

// TestFailureDumpsFlightRecorder forces a job failure and verifies the
// flight recorder lands a dump (ring JSON) in the debug directory and
// the failure is visible in the exposition.
func TestFailureDumpsFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Parallel: 1, DebugDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	s.runFn = func(ctx context.Context, spec harness.RunSpec) (*harness.Result, error) {
		return nil, boom
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
		ts.Close()
	})

	resp := postRun(t, ts, api.RunRequest{Spec: tinySpec(2)})
	resp.Body.Close()
	waitForState(t, s, api.StateFailed, 1)

	// The dump is asynchronous; poll for it.
	deadline := time.Now().Add(5 * time.Second)
	var dumps []string
	for time.Now().Before(deadline) {
		m, _ := filepath.Glob(filepath.Join(dir, "svmd-flight-*.json"))
		if len(m) > 0 {
			dumps = m
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(dumps) == 0 {
		t.Fatal("no flight dump written for a failed job")
	}
	raw, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reason  string             `json:"reason"`
		Records []obs.FlightRecord `json:"records"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Reason != "job failed" || len(doc.Records) == 0 {
		t.Errorf("dump doc = reason %q, %d records", doc.Reason, len(doc.Records))
	}
	sawFailure := false
	for _, r := range doc.Records {
		if r.State == api.StateFailed && r.Msg != "" {
			sawFailure = true
		}
	}
	if !sawFailure {
		t.Errorf("dump ring has no failed record with a message: %+v", doc.Records)
	}

	_, samples := scrape(t, ts)
	if n := sampleInt(t, samples, `svmd_jobs_total{state="failed"}`); n != 1 {
		t.Errorf(`svmd_jobs_total{state="failed"} = %d, want 1`, n)
	}
}

// waitForState polls until n jobs reach the given terminal state.
func waitForState(t *testing.T, s *Server, state string, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s.mu.Lock()
		got := s.stateCount[state]
		s.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d jobs in state %q", n, state)
}

// TestSLOBreachCounted drives a job through a deliberately tiny SLO and
// checks the breach counter and dump.
func TestSLOBreachCounted(t *testing.T) {
	dir := t.TempDir()
	_, ts, c := newTestServer(t, Config{Parallel: 1, SLO: time.Nanosecond, DebugDir: dir})
	if _, err := c.Run(context.Background(), api.RunRequest{Spec: tinySpec(2)}); err != nil {
		t.Fatal(err)
	}
	_, samples := scrape(t, ts)
	if n := sampleInt(t, samples, "svmd_slo_breaches_total"); n != 1 {
		t.Errorf("svmd_slo_breaches_total = %d, want 1", n)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m, _ := filepath.Glob(filepath.Join(dir, "svmd-flight-*.json")); len(m) > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no flight dump written for an SLO breach")
}
