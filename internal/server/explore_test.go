package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"swsm/internal/explore"
	"swsm/internal/harness"
	"swsm/internal/server/client"
)

// exploreReq is the compact 8-point search space every daemon-side
// explore test uses.
func exploreReq() explore.Request {
	return explore.Request{
		App:        "fft",
		Scale:      0,
		Seed:       11,
		SeedPoints: 8,
		Width:      4,
		Space: explore.Space{
			Protocols:      []harness.ProtocolKind{harness.HLRC, harness.SC},
			CommSets:       []string{"A", "B"},
			CostSets:       []string{"O"},
			Procs:          []int{2, 4},
			HLRCUnitShifts: []uint{0},
			SCBlocks:       []int{0},
			DropPPMs:       []int64{0},
		},
	}
}

// The /explore endpoint runs a search through the daemon's own job
// pipeline: a cold run simulates, a restarted daemon over the same
// store replays the identical frontier with zero fresh simulations.
func TestExploreEndToEndAndWarmRestart(t *testing.T) {
	s1, _, c1, dir := newTestServerWithStore(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	cold, err := c1.Explore(ctx, exploreReq())
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if cold.State != explore.StateDone || cold.Stopped != "converged" {
		t.Fatalf("cold explore = %s/%s (%s)", cold.State, cold.Stopped, cold.Error)
	}
	if len(cold.Frontier) == 0 {
		t.Fatal("cold explore found nothing")
	}
	if cold.Progress.SimsRun == 0 {
		t.Fatal("cold explore simulated nothing")
	}
	for i := 1; i < len(cold.Frontier); i++ {
		if cold.Frontier[i].CostCycles <= cold.Frontier[i-1].CostCycles ||
			cold.Frontier[i].Speedup <= cold.Frontier[i-1].Speedup {
			t.Fatalf("frontier not strictly monotone at %d: %+v", i, cold.Frontier)
		}
	}
	// Every frontier row is individually resolvable through the run API
	// by content key (the daemon computed and stored it).
	for _, p := range cold.Frontier {
		if p.Key == "" {
			t.Fatalf("frontier point %s has no key", p.Label)
		}
	}
	drainCtx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	s1.Drain(drainCtx)

	// Restart over the same store: same request, zero new simulations,
	// byte-identical frontier.
	_, _, c2 := newTestServer(t, Config{Parallel: 2, StoreDir: dir})
	warm, err := c2.Explore(ctx, exploreReq())
	if err != nil {
		t.Fatalf("warm explore: %v", err)
	}
	if warm.Progress.SimsRun != 0 {
		t.Errorf("warm explore ran %d fresh simulations, want 0", warm.Progress.SimsRun)
	}
	cf, _ := json.Marshal(cold.Frontier)
	wf, _ := json.Marshal(warm.Frontier)
	if string(cf) != string(wf) {
		t.Errorf("warm frontier diverged:\ncold: %s\nwarm: %s", cf, wf)
	}
}

// Explore lifecycle events ride the daemon's existing SSE channel with
// the status under the "explore" field.
func TestExploreEventsOnSSE(t *testing.T) {
	_, ts, c, _ := newTestServerWithStore(t)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	if _, err := c.Explore(ctx, exploreReq()); err != nil {
		t.Fatalf("explore: %v", err)
	}

	seen := map[string]bool{}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Type    string          `json:"type"`
			Explore *explore.Status `json:"explore"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			continue
		}
		if strings.HasPrefix(ev.Type, "explore") {
			if ev.Explore == nil {
				t.Fatalf("event %s missing explore status", ev.Type)
			}
			seen[ev.Type] = true
		}
		if ev.Type == explore.EventDone {
			break
		}
	}
	for _, want := range []string{explore.EventStarted, explore.EventProgress, explore.EventFrontier, explore.EventDone} {
		if !seen[want] {
			t.Errorf("SSE never carried %s (saw %v)", want, seen)
		}
	}
}

// A draining daemon refuses new explorations with 503.
func TestExploreDrainingRefused(t *testing.T) {
	s, _, c, _ := newTestServerWithStore(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	c.Retries = -1
	_, err := c.SubmitExplore(ctx, exploreReq())
	if err == nil || client.StatusCode(err) != http.StatusServiceUnavailable {
		t.Fatalf("submit on draining daemon = %v, want 503", err)
	}
}
