// Package api defines the wire types of the svmd experiment service —
// the JSON bodies exchanged over /runs, /sweeps, /events and /metrics.
// It is shared by the server and the thin client so both CLIs, the
// daemon and the CI smoke tests speak one format, and it builds on the
// harness's own types: requests carry RunSpec verbatim, responses carry
// harness.RunRow (the same shape svmsim -json prints and the persistent
// store holds).
package api

import (
	"swsm/internal/explore"
	"swsm/internal/harness"
	"swsm/internal/harness/runner"
	"swsm/internal/obs"
	"swsm/internal/store"
)

// Job states, in lifecycle order.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// RunRequest submits one simulation.  The spec is the harness's own
// RunSpec; unset fields keep their zero values, so a minimal request is
// `{"spec":{"App":"fft","Protocol":"hlrc","Procs":16,...}}` — clients
// typically start from harness.DefaultSpec.  Traced specs are rejected:
// trace capture is an in-process artifact the service cannot return.
type RunRequest struct {
	Spec harness.RunSpec `json:"spec"`
	// Speedup additionally resolves the app's canonical sequential
	// baseline (cached like any other spec) and annotates the result row
	// with SeqCycles and Speedup.
	Speedup bool `json:"speedup,omitempty"`
}

// RunStatus describes a submitted job.
type RunStatus struct {
	// ID is the job handle for GET/DELETE /runs/{id}.  Identical
	// concurrent requests coalesce onto one job and share an ID.
	ID string `json:"id"`
	// Key is the spec's stable content key (the persistent-store address).
	Key   string `json:"key"`
	State string `json:"state"`
	// Cached reports that the result was served from the persistent
	// store without simulating.
	Cached bool `json:"cached,omitempty"`
	// Row is the result, present once State is "done".
	Row *harness.RunRow `json:"row,omitempty"`
	// Error is the failure message, present once State is "failed".
	Error string `json:"error,omitempty"`
	// WallMS is the job's wall-clock execution time in milliseconds
	// (queue wait excluded), present once the job left the queue.
	WallMS int64 `json:"wallMs,omitempty"`
	// Worker names the cluster worker the job is dispatched to or was
	// executed by; absent on plain (non-coordinator) daemons.
	Worker string `json:"worker,omitempty"`
}

// SweepRequest submits a batch of points that execute as one tracked
// unit over the daemon's scheduler.  Points deduplicate against
// everything else in flight exactly like individual runs.
type SweepRequest struct {
	Points []RunRequest `json:"points"`
}

// SweepStatus describes a sweep and its per-point jobs, in submission
// order.
type SweepStatus struct {
	ID     string      `json:"id"`
	Total  int         `json:"total"`
	Done   int         `json:"done"`
	Failed int         `json:"failed"`
	Points []RunStatus `json:"points"`
}

// Event is one frame of the /events SSE stream: every job lifecycle
// transition, with the completed row (stats-layer breakdown included)
// on "jobDone" frames, plus sweep progress ticks.
type Event struct {
	// Seq is a monotonically increasing frame number (per daemon).
	Seq int64 `json:"seq"`
	// Type is one of jobQueued, jobStarted, jobDone, jobFailed,
	// jobCanceled, sweepProgress, drain — plus the auto-tuner's
	// exploreStarted, exploreProgress, exploreFrontier, exploreDone,
	// exploreFailed and exploreCanceled.
	Type string `json:"type"`
	// Job carries the job's status for job* events.
	Job *RunStatus `json:"job,omitempty"`
	// Sweep carries progress for sweepProgress events.
	Sweep *SweepStatus `json:"sweep,omitempty"`
	// Explore carries the exploration's status snapshot for explore*
	// events (per-batch progress scalars; frontier-update frames list
	// the newly discovered Pareto points under progress.newPoints).
	Explore *explore.Status `json:"explore,omitempty"`
	// Worker names the cluster worker involved, on coordinator streams:
	// the executor on job* frames, the subject on workerJoined,
	// workerLost and failover frames.
	Worker string `json:"worker,omitempty"`
}

// Metrics is the GET /metrics body.
type Metrics struct {
	UptimeSec float64 `json:"uptimeSec"`
	Draining  bool    `json:"draining"`
	// QueueDepth/QueueCap describe the admission queue; InFlight counts
	// jobs currently executing on workers.
	QueueDepth int `json:"queueDepth"`
	QueueCap   int `json:"queueCap"`
	InFlight   int `json:"inFlight"`
	Workers    int `json:"workers"`
	// Jobs counts jobs by state over the daemon's lifetime.
	Jobs map[string]int `json:"jobs"`
	// Store reports the persistent result store's traffic and residency;
	// StoreHitRatio is Hits/(Hits+Misses).
	Store         store.Stats `json:"store"`
	StoreHitRatio float64     `json:"storeHitRatio"`
	// Runner reports the in-process memoization pool underneath the
	// scheduler (simulations actually executed, memo hits, coalesced
	// waits).
	Runner runner.Stats `json:"runner"`
	// Process reports Go process health: uptime, goroutine count, heap
	// residency and GC totals.  Added with the observability plane;
	// older clients that don't know the field simply ignore it.
	Process obs.ProcessStats `json:"process"`
}

// Health is the GET /healthz body.
type Health struct {
	OK       bool   `json:"ok"`
	Draining bool   `json:"draining"`
	Version  string `json:"version"`
	// KeyVersion is the RunSpec content-key version the daemon computes;
	// clients comparing stored keys across daemons should check it.
	KeyVersion int `json:"keyVersion"`
	// Role and Epoch are reported by cluster coordinators ("primary" or
	// "standby", and the current coordination epoch); absent on plain
	// daemons.
	Role  string `json:"role,omitempty"`
	Epoch int64  `json:"epoch,omitempty"`
	// Workers counts live joined workers (coordinators only).
	Workers int `json:"workers,omitempty"`
}

// ---------------------------------------------------------------------------
// Cluster protocol: the wire types of the coordinator <-> worker lease
// protocol and the coordinator <-> standby replication log.  Workers
// pull: a join registers the node, a lease request doubles as the
// heartbeat and hands out queued jobs (its own ring share first, then
// stolen stragglers), and a complete reports the terminal row.  Every
// message carries the sender's last-seen epoch so a superseded
// coordinator can be fenced.

// Cluster coordinator roles.
const (
	RolePrimary = "primary"
	RoleStandby = "standby"
)

// ClusterJoinRequest registers a worker with the coordinator.
type ClusterJoinRequest struct {
	// WorkerID is the worker's stable identity (ring placement hashes
	// it, so it must survive worker restarts for cache locality to).
	WorkerID string `json:"workerId"`
	// Slots is the worker's concurrent-simulation bound, reported for
	// observability and steal heuristics.
	Slots int `json:"slots"`
	// Epoch is the highest coordination epoch the worker has seen.
	Epoch int64 `json:"epoch"`
}

// ClusterJoinResponse acknowledges a join.
type ClusterJoinResponse struct {
	Epoch int64  `json:"epoch"`
	Role  string `json:"role"`
}

// ClusterLeaseRequest asks for up to Max jobs and renews the leases of
// the jobs the worker still holds.  A request with Max 0 is a pure
// heartbeat.
type ClusterLeaseRequest struct {
	WorkerID string `json:"workerId"`
	Slots    int    `json:"slots"`
	Max      int    `json:"max"`
	// Held renews the lease on jobs the worker is still executing, so a
	// slow simulation is a straggler (stealable queue, extended lease),
	// not a death (re-dispatch).
	Held  []string `json:"held,omitempty"`
	Epoch int64    `json:"epoch"`
}

// ClusterLeasedJob is one job handed to a worker.
type ClusterLeasedJob struct {
	ID  string     `json:"id"`
	Req RunRequest `json:"req"`
	// Stolen marks a job taken from another worker's dispatch queue
	// (the thief was idle; the ring home was a straggler).
	Stolen bool `json:"stolen,omitempty"`
}

// ClusterLeaseResponse carries leased jobs and the coordinator's epoch.
type ClusterLeaseResponse struct {
	Epoch int64              `json:"epoch"`
	Role  string             `json:"role"`
	Jobs  []ClusterLeasedJob `json:"jobs,omitempty"`
}

// ClusterCompleteRequest reports one leased job's terminal result.
// Completion is idempotent at the coordinator: a job already terminal
// (completed by a steal race or an earlier attempt) is acknowledged as
// a duplicate and its result discarded — results are content-addressed
// and deterministic, so the first row is the row.
type ClusterCompleteRequest struct {
	WorkerID string `json:"workerId"`
	JobID    string `json:"jobId"`
	Epoch    int64  `json:"epoch"`
	// Row is the result on success (nil when Error is set).
	Row *harness.RunRow `json:"row,omitempty"`
	// Cached reports the worker answered from its own cache tier
	// (persistent store or memo) without simulating.
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
}

// ClusterCompleteResponse acknowledges a completion.
type ClusterCompleteResponse struct {
	Epoch     int64 `json:"epoch"`
	Duplicate bool  `json:"duplicate,omitempty"`
}

// Cluster log record types, the replicated coordinator state: every
// submission, terminal transition and membership change, in sequence
// order.  A standby replaying the log from 1 reconstructs the job
// table; everything else (queue placement, leases) is derived state the
// new primary rebuilds from the ring.
const (
	ClusterLogSubmit   = "submit"
	ClusterLogComplete = "complete"
	ClusterLogCancel   = "cancel"
	ClusterLogSweep    = "sweep"
	ClusterLogJoin     = "join"
	ClusterLogLost     = "lost"
)

// ClusterLogRecord is one entry of the coordinator's replicated log.
type ClusterLogRecord struct {
	Seq   int64  `json:"seq"`
	Epoch int64  `json:"epoch"`
	Type  string `json:"type"`
	// JobID/Req describe submissions; JobID alone cancels.
	JobID string      `json:"jobId,omitempty"`
	Req   *RunRequest `json:"req,omitempty"`
	// Row/Cached/Error carry a completion (Row nil on failure).
	Row    *harness.RunRow `json:"row,omitempty"`
	Cached bool            `json:"cached,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Worker names the subject of join/lost records and the executor on
	// completions.
	Worker string `json:"worker,omitempty"`
	// SweepID/JobIDs describe sweep registrations.
	SweepID string   `json:"sweepId,omitempty"`
	JobIDs  []string `json:"jobIds,omitempty"`
}

// ClusterLogResponse is the GET /cluster/log body: records after the
// requested sequence number, plus the primary's epoch so a follower
// notices supersession.
type ClusterLogResponse struct {
	Epoch   int64              `json:"epoch"`
	Role    string             `json:"role"`
	NextSeq int64              `json:"nextSeq"`
	Records []ClusterLogRecord `json:"records,omitempty"`
}

// ClusterWorker snapshots one joined worker for /cluster/status.
type ClusterWorker struct {
	ID       string `json:"id"`
	Slots    int    `json:"slots"`
	Queued   int    `json:"queued"`
	Leased   int    `json:"leased"`
	Done     int64  `json:"done"`
	Stolen   int64  `json:"stolen"`
	LastSeen string `json:"lastSeen"`
}

// ClusterStatus is the GET /cluster/status body — the coordinator's
// membership and scheduling state for dashboards and smoke tests.
type ClusterStatus struct {
	Role    string          `json:"role"`
	Epoch   int64           `json:"epoch"`
	LogSeq  int64           `json:"logSeq"`
	Workers []ClusterWorker `json:"workers"`
	// Unassigned counts jobs waiting for any worker to join.
	Unassigned   int   `json:"unassigned"`
	Redispatches int64 `json:"redispatches"`
	// CacheHits counts jobs answered from the coordinator's own store
	// without dispatching.
	CacheHits int64 `json:"cacheHits"`
	// Duplicates counts idempotently discarded duplicate completions.
	Duplicates int64 `json:"duplicates"`
	// StandbySeq is the last replicated log sequence on the other side
	// of the replication link: on the primary, the highest sequence a
	// log follower has confirmed (a poll from seq N confirms everything
	// below N); on a standby, its own applied sequence.
	StandbySeq int64 `json:"standbySeq"`
	// ReplicationLag is the replication link's backlog in log records:
	// LogSeq - StandbySeq on the primary (0 with no follower yet and an
	// empty log), primary NextSeq-1 minus applied sequence on a
	// standby.  Exposed as the svmd_cluster_replication_lag gauge.
	ReplicationLag int64 `json:"replicationLag"`
}
