// Package api defines the wire types of the svmd experiment service —
// the JSON bodies exchanged over /runs, /sweeps, /events and /metrics.
// It is shared by the server and the thin client so both CLIs, the
// daemon and the CI smoke tests speak one format, and it builds on the
// harness's own types: requests carry RunSpec verbatim, responses carry
// harness.RunRow (the same shape svmsim -json prints and the persistent
// store holds).
package api

import (
	"swsm/internal/harness"
	"swsm/internal/harness/runner"
	"swsm/internal/obs"
	"swsm/internal/store"
)

// Job states, in lifecycle order.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// RunRequest submits one simulation.  The spec is the harness's own
// RunSpec; unset fields keep their zero values, so a minimal request is
// `{"spec":{"App":"fft","Protocol":"hlrc","Procs":16,...}}` — clients
// typically start from harness.DefaultSpec.  Traced specs are rejected:
// trace capture is an in-process artifact the service cannot return.
type RunRequest struct {
	Spec harness.RunSpec `json:"spec"`
	// Speedup additionally resolves the app's canonical sequential
	// baseline (cached like any other spec) and annotates the result row
	// with SeqCycles and Speedup.
	Speedup bool `json:"speedup,omitempty"`
}

// RunStatus describes a submitted job.
type RunStatus struct {
	// ID is the job handle for GET/DELETE /runs/{id}.  Identical
	// concurrent requests coalesce onto one job and share an ID.
	ID string `json:"id"`
	// Key is the spec's stable content key (the persistent-store address).
	Key   string `json:"key"`
	State string `json:"state"`
	// Cached reports that the result was served from the persistent
	// store without simulating.
	Cached bool `json:"cached,omitempty"`
	// Row is the result, present once State is "done".
	Row *harness.RunRow `json:"row,omitempty"`
	// Error is the failure message, present once State is "failed".
	Error string `json:"error,omitempty"`
	// WallMS is the job's wall-clock execution time in milliseconds
	// (queue wait excluded), present once the job left the queue.
	WallMS int64 `json:"wallMs,omitempty"`
}

// SweepRequest submits a batch of points that execute as one tracked
// unit over the daemon's scheduler.  Points deduplicate against
// everything else in flight exactly like individual runs.
type SweepRequest struct {
	Points []RunRequest `json:"points"`
}

// SweepStatus describes a sweep and its per-point jobs, in submission
// order.
type SweepStatus struct {
	ID     string      `json:"id"`
	Total  int         `json:"total"`
	Done   int         `json:"done"`
	Failed int         `json:"failed"`
	Points []RunStatus `json:"points"`
}

// Event is one frame of the /events SSE stream: every job lifecycle
// transition, with the completed row (stats-layer breakdown included)
// on "jobDone" frames, plus sweep progress ticks.
type Event struct {
	// Seq is a monotonically increasing frame number (per daemon).
	Seq int64 `json:"seq"`
	// Type is one of jobQueued, jobStarted, jobDone, jobFailed,
	// jobCanceled, sweepProgress, drain.
	Type string `json:"type"`
	// Job carries the job's status for job* events.
	Job *RunStatus `json:"job,omitempty"`
	// Sweep carries progress for sweepProgress events.
	Sweep *SweepStatus `json:"sweep,omitempty"`
}

// Metrics is the GET /metrics body.
type Metrics struct {
	UptimeSec float64 `json:"uptimeSec"`
	Draining  bool    `json:"draining"`
	// QueueDepth/QueueCap describe the admission queue; InFlight counts
	// jobs currently executing on workers.
	QueueDepth int `json:"queueDepth"`
	QueueCap   int `json:"queueCap"`
	InFlight   int `json:"inFlight"`
	Workers    int `json:"workers"`
	// Jobs counts jobs by state over the daemon's lifetime.
	Jobs map[string]int `json:"jobs"`
	// Store reports the persistent result store's traffic and residency;
	// StoreHitRatio is Hits/(Hits+Misses).
	Store         store.Stats `json:"store"`
	StoreHitRatio float64     `json:"storeHitRatio"`
	// Runner reports the in-process memoization pool underneath the
	// scheduler (simulations actually executed, memo hits, coalesced
	// waits).
	Runner runner.Stats `json:"runner"`
	// Process reports Go process health: uptime, goroutine count, heap
	// residency and GC totals.  Added with the observability plane;
	// older clients that don't know the field simply ignore it.
	Process obs.ProcessStats `json:"process"`
}

// Health is the GET /healthz body.
type Health struct {
	OK       bool   `json:"ok"`
	Draining bool   `json:"draining"`
	Version  string `json:"version"`
	// KeyVersion is the RunSpec content-key version the daemon computes;
	// clients comparing stored keys across daemons should check it.
	KeyVersion int `json:"keyVersion"`
}
