// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md and
// microbenchmarks of the substrate layers.
//
// The figure/table benchmarks run full simulations; their interesting
// output is the custom metrics (speedups, percentages) reported per
// configuration, not ns/op.  Run with:
//
//	go test -bench=. -benchmem
package swsm_test

import (
	"fmt"
	"testing"

	"swsm"
	"swsm/internal/sim"
	"swsm/internal/stats"
)

// benchApps is the subset used by per-figure benchmarks to keep -bench=.
// affordable; cmd/svmbench covers the full suite.
var benchApps = []string{"fft", "lu", "ocean", "barnes", "radix", "water-nsquared"}

// BenchmarkTable1 renders the applications table (static).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(swsm.Table1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2 renders the communication parameter sets (static).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(swsm.Table2()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3 renders the protocol cost sets (static).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(swsm.Table3()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable4 measures protocol-activity percentages (HLRC, base
// configuration) across the suite and reports the diff/handler split
// for a representative pair of applications.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := swsm.Table4(swsm.Tiny, 8)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.App {
			case "water-nsquared":
				b.ReportMetric(r.DiffPct, "water-diff-%")
			case "ocean":
				b.ReportMetric(r.HandlerPct, "ocean-handler-%")
			}
		}
	}
}

// BenchmarkTable5 computes the per-application layer-importance summary.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := swsm.Table5(swsm.Tiny, 8)
		if err != nil {
			b.Fatal(err)
		}
		commFirst := 0
		for _, r := range rows {
			if r.CommFirst {
				commFirst++
			}
		}
		b.ReportMetric(float64(commFirst)/float64(len(rows))*100, "comm-first-%")
	}
}

// BenchmarkFigure3 regenerates the speedup ladder per application,
// reporting the base (AO) and idealized (BB) HLRC speedups.
func BenchmarkFigure3(b *testing.B) {
	for _, app := range benchApps {
		app := app
		b.Run(app, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bar, err := swsm.Figure3(app, swsm.Base, 16)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(bar.HLRC["AO"], "hlrc-AO-speedup")
				b.ReportMetric(bar.HLRC["BB"], "hlrc-BB-speedup")
				b.ReportMetric(bar.SC["AO"], "sc-AO-speedup")
				b.ReportMetric(bar.Ideal, "ideal-speedup")
			}
		})
	}
}

// BenchmarkFigure4 regenerates execution-time breakdowns, reporting the
// base configuration's data-wait share.
func BenchmarkFigure4(b *testing.B) {
	for _, app := range []string{"fft", "barnes"} {
		app := app
		b.Run(app, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := swsm.Figure4(app, swsm.Base, 16)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Proto == swsm.HLRC && r.Config == "AO" {
						total := float64(0)
						for _, v := range r.Breakdown {
							total += v
						}
						b.ReportMetric(r.Breakdown[stats.DataWait]/total*100, "data-wait-%")
					}
				}
			}
		})
	}
}

// BenchmarkFigure5 regenerates the single-parameter sweeps, reporting
// the bandwidth sensitivity of HLRC and the occupancy sensitivity of SC
// (the paper's conclusion iv).
func BenchmarkFigure5(b *testing.B) {
	for _, app := range []string{"fft", "raytrace"} {
		app := app
		b.Run(app, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pts, err := swsm.Figure5(app, swsm.Base, 16)
				if err != nil {
					b.Fatal(err)
				}
				get := func(param, factor string, proto swsm.ProtocolKind) float64 {
					for _, p := range pts {
						if p.Param == param && p.Factor == factor && p.Proto == proto {
							return p.Speedup
						}
					}
					return 0
				}
				b.ReportMetric(get("bandwidth", "0", swsm.HLRC)/get("bandwidth", "1", swsm.HLRC),
					"hlrc-bw-gain")
				b.ReportMetric(get("occupancy", "0", swsm.SC)/get("occupancy", "1", swsm.SC),
					"sc-occ-gain")
			}
		})
	}
}

// --- ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationPollQuantum varies the back-edge polling granularity.
func BenchmarkAblationPollQuantum(b *testing.B) {
	for _, q := range []int64{200, 1000, 5000} {
		q := q
		b.Run(fmt.Sprintf("quantum=%d", q), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := swsm.DefaultSpec("raytrace", swsm.HLRC)
				spec.Scale = swsm.Tiny
				spec.Procs = 8
				spec.PollQuantum = q
				res, err := swsm.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationHomePlacement compares application-directed data
// placement against pure round-robin homes.
func BenchmarkAblationHomePlacement(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		disabled := disabled
		name := "placed"
		if disabled {
			name = "round-robin"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := swsm.DefaultSpec("ocean", swsm.HLRC)
				spec.Scale = swsm.Tiny
				spec.Procs = 8
				spec.DisablePlacement = disabled
				res, err := swsm.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationGranularity sweeps the SC coherence granularity for
// a regular and an irregular application.
func BenchmarkAblationGranularity(b *testing.B) {
	for _, app := range []string{"fft", "barnes"} {
		for _, bs := range []int{64, 256, 1024, 4096} {
			app, bs := app, bs
			b.Run(fmt.Sprintf("%s/block=%d", app, bs), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					spec := swsm.DefaultSpec(app, swsm.SC)
					spec.Scale = swsm.Tiny
					spec.Procs = 8
					spec.SCBlockOverride = bs
					res, err := swsm.Run(spec)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Cycles), "sim-cycles")
				}
			})
		}
	}
}

// BenchmarkAblationPollution toggles protocol-induced cache pollution.
func BenchmarkAblationPollution(b *testing.B) {
	for _, off := range []bool{false, true} {
		off := off
		name := "polluting"
		if off {
			name = "clean"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := swsm.DefaultSpec("water-nsquared", swsm.HLRC)
				spec.Scale = swsm.Tiny
				spec.Procs = 8
				spec.NoProtocolPollution = off
				res, err := swsm.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationEagerHome compares HLRC's eager diff propagation to
// a home against classic LRC's distributed diffs fetched on fault — the
// design choice that defines HLRC.
func BenchmarkAblationEagerHome(b *testing.B) {
	for _, prot := range []swsm.ProtocolKind{swsm.HLRC, swsm.LRC} {
		prot := prot
		b.Run(string(prot), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := swsm.DefaultSpec("water-nsquared", prot)
				spec.Scale = swsm.Tiny
				spec.Procs = 8
				res, err := swsm.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationInterrupts models interrupt-based message handling
// (cost ~5000 cycles / 25us) instead of polling — the paper notes that
// "when interrupts are used their cost is the most significant cost in
// the communication architecture".
func BenchmarkAblationInterrupts(b *testing.B) {
	for _, mh := range []int64{200, 5000} {
		mh := mh
		name := "polling"
		if mh > 1000 {
			name = "interrupts"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := swsm.DefaultSpec("ocean", swsm.HLRC)
				spec.Scale = swsm.Tiny
				spec.Procs = 8
				spec.Comm.MsgHandling = mh
				res, err := swsm.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkAblationHLRCUnit sweeps HLRC's coherence unit from 128 B to
// the classic 4 KB page: sub-page units are the delayed-consistency
// fine-grained multiple-writer protocol the paper's referee note says is
// "a little better than SC for most granularities smaller than a page".
func BenchmarkAblationHLRCUnit(b *testing.B) {
	for _, shift := range []uint{7, 9, 12} {
		shift := shift
		b.Run(fmt.Sprintf("unit=%d", 1<<shift), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := swsm.DefaultSpec("barnes", swsm.HLRC)
				spec.Scale = swsm.Tiny
				spec.Procs = 8
				spec.HLRCUnitShift = shift
				res, err := swsm.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "sim-cycles")
			}
		})
	}
}

// BenchmarkSCSoftwareAccessControl adds Shasta-style instrumentation
// cost to every shared access — the all-software SC comparison the
// paper says "awaits further research" ("with software instrumentation
// costs, performance would be much closer").
func BenchmarkSCSoftwareAccessControl(b *testing.B) {
	for _, sw := range []bool{false, true} {
		sw := sw
		name := "hardware"
		if sw {
			name = "software"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				spec := swsm.DefaultSpec("lu", swsm.SC)
				spec.Scale = swsm.Tiny
				spec.Procs = 8
				spec.SoftwareAccessControl = sw
				res, err := swsm.Run(spec)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles), "sim-cycles")
			}
		})
	}
}

// --- substrate microbenchmarks ---

// BenchmarkEngineEvents measures raw event throughput of the simulation
// core.
func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine()
	n := 0
	var post func()
	post = func() {
		n++
		if n < b.N {
			eng.After(1, post)
		}
	}
	b.ResetTimer()
	eng.After(1, post)
	if _, err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimulatedAccess measures the per-access overhead of the full
// Thread fast path (protocol check + cache model) on the HLRC machine.
func BenchmarkSimulatedAccess(b *testing.B) {
	cfg := swsm.MachineDefaults()
	cfg.Procs = 1
	cfg.MemLimit = 8 << 20
	m := swsm.NewHLRCMachine(cfg)
	addr := m.AllocPage(1 << 20)
	b.ResetTimer()
	if _, err := m.Run(func(t *swsm.Thread) {
		for i := 0; i < b.N; i++ {
			t.Store32(addr+int64(i%262144)*4, uint32(i))
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHLRCPageFault measures simulated page-fault round trips.
func BenchmarkHLRCPageFault(b *testing.B) {
	cfg := swsm.MachineDefaults()
	cfg.Procs = 2
	cfg.MemLimit = 256 << 20
	m := swsm.NewHLRCMachine(cfg)
	// Enough pages that accesses on proc 1 fault (capped; iterations
	// beyond the cap revisit warm pages).
	n := b.N
	if n > 50000 {
		n = 50000
	}
	addr := m.AllocPage(int64(n+1) * 4096)
	total := b.N
	b.ResetTimer()
	if _, err := m.Run(func(t *swsm.Thread) {
		if t.Proc() == 1 {
			for i := 0; i < total; i++ {
				t.Load32(addr + int64(i%n)*4096)
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSCBlockMiss measures simulated fine-grained miss round trips.
func BenchmarkSCBlockMiss(b *testing.B) {
	cfg := swsm.MachineDefaults()
	cfg.Procs = 2
	cfg.MemLimit = 64 << 20
	m := swsm.NewSCMachine(cfg, 64)
	n := b.N
	if n > 500000 {
		n = 500000
	}
	addr := m.AllocPage(int64(n+1) * 64)
	b.ResetTimer()
	if _, err := m.Run(func(t *swsm.Thread) {
		if t.Proc() == 1 {
			for i := 0; i < n; i++ {
				t.Load32(addr + int64(i)*64)
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}
