module swsm

go 1.22
