// Package swsm is the public API of the layered software-shared-memory
// study: a faithful reproduction, in pure Go, of "Limits to the
// Performance of Software Shared Memory: A Layered Approach" (HPCA
// 1999).
//
// The library contains a deterministic execution-driven cluster
// simulator, two software shared-memory protocols — page-grained
// home-based lazy release consistency (HLRC) and fine/variable-grained
// sequentially consistent directory coherence (SC) — a parameterized
// communication layer, the nine SPLASH-2-style applications of the
// paper's Table 1 plus their restructured-for-SVM variants, and the
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// # Quick start
//
// Run one application under one configuration:
//
//	spec := swsm.DefaultSpec("fft", swsm.HLRC)
//	res, err := swsm.Run(spec)
//	// res.Cycles, res.Stats: breakdowns, counters ...
//
// Compare against the sequential baseline:
//
//	speedup, res, err := swsm.Speedup(spec)
//
// Or write a program of your own against the shared-address-space model:
//
//	m := swsm.NewHLRCMachine(swsm.MachineDefaults())
//	addr := m.AllocPage(4096)
//	cycles, err := m.Run(func(t *swsm.Thread) {
//	    t.Acquire(0)
//	    t.Store32(addr, t.Load32(addr)+1)
//	    t.Release(0)
//	    t.Barrier(0)
//	})
//
// The three layers the paper varies are the knobs of RunSpec: the
// communication parameter sets (CommAchievable … CommBetterThanBest),
// the protocol cost sets (CostsOriginal/Halfway/Best), and the choice of
// original vs restructured application.
package swsm

import (
	"swsm/internal/apps"
	"swsm/internal/apps/litmus"
	"swsm/internal/comm"
	"swsm/internal/consistency"
	"swsm/internal/core"
	"swsm/internal/explore"
	"swsm/internal/fault"
	"swsm/internal/harness"
	"swsm/internal/harness/runner"
	"swsm/internal/hetero"
	"swsm/internal/proto"
	"swsm/internal/proto/hlrc"
	"swsm/internal/proto/ideal"
	"swsm/internal/proto/scfg"
	"swsm/internal/stats"
	"swsm/internal/trace"

	// Register the full application suite.
	_ "swsm/internal/apps/barnes"
	_ "swsm/internal/apps/fft"
	_ "swsm/internal/apps/lu"
	_ "swsm/internal/apps/ocean"
	_ "swsm/internal/apps/radix"
	_ "swsm/internal/apps/raytrace"
	_ "swsm/internal/apps/volrend"
	_ "swsm/internal/apps/water"
)

// Core machine types.
type (
	// Machine is a simulated cluster (see internal/core).
	Machine = core.Machine
	// MachineConfig configures a Machine.
	MachineConfig = core.Config
	// Thread is the shared-address-space programming interface handed to
	// every simulated processor.
	Thread = core.Thread
	// CommParams are the communication-layer cost parameters (Table 2).
	CommParams = comm.Params
	// ProtocolCosts are the protocol-layer cost parameters (Table 3).
	ProtocolCosts = proto.Costs
	// Metrics is a run's statistics record (breakdowns and counters).
	Metrics = stats.Machine
)

// Experiment harness types.
type (
	// RunSpec describes one simulation run.
	RunSpec = harness.RunSpec
	// Result is one run's outcome.
	Result = harness.Result
	// ProtocolKind selects HLRC, SC or the ideal machine.
	ProtocolKind = harness.ProtocolKind
	// LayerConfig pairs a communication set with a protocol cost set
	// ("AO" is the base system, "BB" both idealized...).
	LayerConfig = harness.LayerConfig
	// Scale selects a problem size (Tiny, Base, Large).
	Scale = apps.Scale
	// AppInfo describes a registered application.
	AppInfo = apps.Info
)

// Protocol kinds.
const (
	HLRC  = harness.HLRC
	SC    = harness.SC
	LRC   = harness.LRC
	Ideal = harness.Ideal
)

// Problem scales.
const (
	Tiny  = apps.Tiny
	Base  = apps.Base
	Large = apps.Large
)

// Communication parameter sets (the paper's A, B, H, W, B+).
var (
	CommAchievable     = comm.Achievable
	CommBest           = comm.Best
	CommHalfway        = comm.Halfway
	CommWorse          = comm.Worse
	CommBetterThanBest = comm.BetterThanBest
)

// Protocol cost sets (the paper's O, H, B).
var (
	CostsOriginal = proto.OriginalCosts
	CostsHalfway  = proto.HalfwayCosts
	CostsBest     = proto.BestCosts
)

// MachineDefaults returns the paper's base machine configuration: 16
// uniprocessor nodes, achievable communication parameters, original
// protocol costs, P6-like caches.
func MachineDefaults() MachineConfig { return core.DefaultConfig() }

// NewHLRCMachine builds a cluster running home-based lazy release
// consistency with the configured protocol costs.
func NewHLRCMachine(cfg MachineConfig) *Machine {
	return core.NewMachine(cfg, hlrc.New(hlrc.Config{Costs: cfg.Costs}))
}

// NewSCMachine builds a cluster running the fine-grained sequentially
// consistent protocol at the given block granularity (bytes, a power of
// two; 64 if zero).
func NewSCMachine(cfg MachineConfig, blockSize int) *Machine {
	return core.NewMachine(cfg, scfg.New(scfg.Config{Costs: cfg.Costs, BlockSize: blockSize}))
}

// NewIdealMachine builds the zero-cost-coherence machine used for
// algorithmic speedups and sequential baselines.
func NewIdealMachine(cfg MachineConfig) *Machine {
	cfg.SharedMem = true
	return core.NewMachine(cfg, ideal.New())
}

// Apps lists the registered applications (originals and restructured).
func Apps() []string { return apps.Names() }

// AppLookup returns metadata for a registered application.
func AppLookup(name string) (AppInfo, error) { return apps.Lookup(name) }

// DefaultSpec is the paper's base (AO) configuration for an application.
func DefaultSpec(app string, prot ProtocolKind) RunSpec {
	return harness.DefaultSpec(app, prot)
}

// Run executes a spec end to end (setup, simulate, verify).
func Run(spec RunSpec) (*Result, error) { return harness.Run(spec) }

// RunRow is the machine-readable form of a Result: the one JSON shape
// shared by svmsim/svmbench -json output, the experiment service's
// (cmd/svmd) responses, and the persistent result store's payloads.
type RunRow = harness.RunRow

// KeyVersion is the version of RunSpec's content-key encoding
// (RunSpec.Key, the address results are stored under); it is bumped
// whenever the canonical encoding changes.
const KeyVersion = harness.KeyVersion

// RunRow constructors and serialization.
var (
	NewRunRow       = harness.NewRunRow
	WriteRunRowJSON = harness.WriteRunRowJSON
)

// Session is a sweep session: it fans independent runs over a bounded
// worker pool and memoizes every run by its RunSpec, so a configuration
// executes at most once per session no matter how many figures and
// tables request it.  Each figure/table helper exists as a Session
// method; the package-level functions are one-off sessions.
type Session = harness.Session

// SweepStats are a Session's cache counters (runs executed, cache hits,
// single-flight waits).
type SweepStats = runner.Stats

// NewSession creates a sweep session running at most parallel
// simulations concurrently (0 = one per available CPU).
func NewSession(parallel int) *Session { return harness.NewSession(parallel) }

// Speedup runs spec and reports speedup over the sequential baseline.
func Speedup(spec RunSpec) (float64, *Result, error) { return harness.Speedup(spec) }

// SequentialBaseline reports the one-processor ideal-machine cycle count
// used as every speedup's denominator.
func SequentialBaseline(app string, scale Scale) (int64, error) {
	return harness.SequentialBaseline(app, scale, true)
}

// Figure3 reproduces the paper's Figure 3 speedup ladder for one app.
func Figure3(app string, scale Scale, procs int) (*harness.AppBar, error) {
	return harness.Figure3(app, scale, procs, harness.Figure3Configs)
}

// Figure4 reproduces the paper's Figure 4 execution-time breakdowns.
func Figure4(app string, scale Scale, procs int) ([]harness.Figure4Row, error) {
	return harness.Figure4(app, scale, procs, harness.Figure3Configs)
}

// Figure5 reproduces the paper's Figure 5 single-communication-parameter
// sweeps.
func Figure5(app string, scale Scale, procs int) ([]harness.Figure5Point, error) {
	return harness.Figure5(app, scale, procs)
}

// Tables 1-3 render the static configuration tables; Table4 and Table5
// run the measurements behind the paper's Tables 4 and 5.
var (
	Table1       = harness.Table1
	Table2       = harness.Table2
	Table3       = harness.Table3
	Table4       = harness.Table4
	Table5       = harness.Table5
	FormatTable4 = harness.FormatTable4
	FormatTable5 = harness.FormatTable5
)

// Formatting helpers for the figure reproductions.
var (
	FormatFigure3 = harness.FormatFigure3
	FormatFigure4 = harness.FormatFigure4
	FormatFigure5 = harness.FormatFigure5
)

// Figure3Configs is the paper's bar ladder (B+B, BB, AB, BO, AO, WO).
var Figure3Configs = harness.Figure3Configs

// Observability types: set RunSpec.Trace (and optionally
// RunSpec.TraceSample) and the Result carries a TraceData with the
// captured event stream, breakdown timeline and hot-object profile.
type (
	// TraceData is one traced run's captured observability data.
	TraceData = trace.Data
	// TraceRun labels one traced run for multi-run trace files.
	TraceRun = trace.Run
	// HotProfile ranks pages, locks and barriers hottest-first.
	HotProfile = trace.Profile
)

// Trace serialization: Chrome trace_event JSON (loads in Perfetto /
// chrome://tracing; one track per simulated processor) and compact
// JSONL.  Output bytes are deterministic for identical runs.
var (
	WriteChromeTrace      = trace.WriteChrome
	WriteChromeTraceMulti = trace.WriteChromeMulti
	WriteJSONLTrace       = trace.WriteJSONL
)

// Observability CSV exports and traced-sweep helpers.
var (
	WriteBreakdownTimelineCSV = harness.WriteBreakdownTimelineCSV
	WriteHotObjectsCSV        = harness.WriteHotObjectsCSV
	TracedConfigSpecs         = harness.TracedConfigSpecs
	TraceRuns                 = harness.TraceRuns
)

// Closed-loop auto-tuning: Explore adaptively searches the configuration
// space of one application (protocol x communication set x cost set x
// processor count x protocol knobs) for the Pareto frontier of speedup
// vs. cumulative simulated cost.  The search is deterministic for a
// fixed seed and budget, and evaluates through a Session (and optional
// persistent store), so re-exploring a warm space costs no new
// simulations.  The same engine runs behind svmd's /explore endpoint.
type (
	// ExploreRequest configures one auto-tuning search.
	ExploreRequest = explore.Request
	// ExploreSpace bounds the searched configuration space.
	ExploreSpace = explore.Space
	// ExploreReport is a finished search: the frontier plus counters.
	ExploreReport = explore.Report
	// ExplorePoint is one Pareto-frontier entry.
	ExplorePoint = explore.Point
	// ExploreProgress is the per-batch progress record.
	ExploreProgress = explore.Progress
	// SessionEvaluator evaluates explore candidates through a Session,
	// optionally backed by a persistent result store.
	SessionEvaluator = explore.SessionEvaluator
)

// Explore runs one auto-tuning search to completion; WriteFrontierCSV
// exports a frontier in the svmbench/svmd CSV schema.
var (
	Explore          = explore.Run
	WriteFrontierCSV = explore.WriteFrontierCSV
)

// Fault injection and graceful degradation: set RunSpec.Fault and the
// machine routes every protocol message through a reliable transport
// (sequence numbers, cumulative acks, timeout retransmission with capped
// exponential backoff, duplicate suppression) over a deterministically
// faulty fabric.  Faulted runs must still compute the fault-free
// answers — Run verifies every result — so the fault plane doubles as a
// correctness oracle for the protocol stack.
type (
	// FaultSpec configures the deterministic fault plane (drop /
	// duplicate / delay rates in parts per million, node pause and NI
	// stall windows, all keyed by a seed).  The zero value is the
	// paper's perfectly reliable fabric.
	FaultSpec = fault.Spec
	// DegradationPoint is one slowdown-vs-drop-rate measurement.
	DegradationPoint = harness.DegradationPoint
)

// FaultPPM is the fixed-point base of FaultSpec rates (parts per
// million; 10_000 PPM = 1%).
const FaultPPM = fault.PPM

// Degradation-sweep helpers: FaultedSpec attaches a seeded drop-rate
// plan to a spec; Session.DegradationSweep measures slowdown vs drop
// rate across app x protocol; the formatters render/export the points.
var (
	FaultedSpec         = harness.FaultedSpec
	FormatDegradation   = harness.FormatDegradation
	WriteDegradationCSV = harness.WriteDegradationCSV
)

// Heterogeneous clusters: set RunSpec.Hetero and every node gets its own
// machine model (CPU, accelerator and link-speed multipliers as exact
// integer rationals), with optional adaptive page-home migration and
// per-page coherence-granularity selection inside the HLRC protocol.
// Session.HeterogeneitySweep measures skew x placement x protocol and
// derives where the paper's uniform-cluster protocol verdicts flip.
type (
	// HeteroSpec is the per-node machine model + placement policy plane
	// of a RunSpec.  The zero value is the paper's uniform cluster.
	HeteroSpec = hetero.Spec
	// HeteroNodeSpec is one node's resolved cycle multipliers.
	HeteroNodeSpec = hetero.NodeSpec
	// HeteroPoint is one app x skew x placement x protocol measurement.
	HeteroPoint = harness.HeteroPoint
	// HeteroFlip is one row of the protocol-verdict table.
	HeteroFlip = harness.HeteroFlip
)

// The placement policies a HeteroSpec can carry.
const (
	PlaceApp      = hetero.PlaceApp
	PlaceRR       = hetero.PlaceRR
	PlaceAdaptive = hetero.PlaceAdaptive
)

// Heterogeneity-sweep helpers: presets and placement policies by name,
// spec composition, the verdict table, and the render/export paths.
var (
	HeteroPresetNames     = hetero.PresetNames
	HeteroPresetByName    = hetero.PresetByName
	HeteroPlacementNames  = harness.PlacementNames
	ComposeHeteroSpec     = harness.HeteroSpec
	HeteroVerdicts        = harness.HeteroVerdicts
	FormatHeterogeneity   = harness.FormatHeterogeneity
	WriteHeterogeneityCSV = harness.WriteHeterogeneityCSV
)

// Consistency conformance checking: set RunSpec.Check and every load of
// the run is verified against the writes the protocol's declared memory
// model (release consistency for hlrc/lrc, sequential consistency for
// sc) permits.  A conforming run carries a ConsistencySummary in the
// Result; a violation fails the run with a *ConsistencyViolation error
// naming the processor, word address, cycle and the happens-before path
// that forbids the value read.
type (
	// ConsistencySummary is the checker's coverage record.
	ConsistencySummary = consistency.Summary
	// ConsistencyViolation is a checker failure (use errors.As).
	ConsistencyViolation = consistency.Violation
	// ConsistencyModel names the contract a protocol declares (RC or SC).
	ConsistencyModel = proto.Model
	// LitmusProgram is one generated random litmus workload.
	LitmusProgram = litmus.Program
	// LitmusPoint is one (seed, protocol, fault-rate) cell of a sweep.
	LitmusPoint = harness.LitmusPoint
)

// The declared consistency models.
const (
	ModelRC = proto.ModelRC
	ModelSC = proto.ModelSC
)

// Litmus workloads: seeded deterministic random programs of loads,
// stores, lock sections and barriers, registered as ordinary
// applications (LitmusSpec/LitmusEnsure) and swept across the protocol
// and fault grid with the checker on (Session.LitmusSweep).
// ShrinkLitmus delta-debugs a failing program to a minimal reproducer.
var (
	LitmusGenerate = litmus.Generate
	LitmusEnsure   = litmus.Ensure
	LitmusSpec     = harness.LitmusSpec
	ShrinkLitmus   = harness.ShrinkLitmus
	FormatLitmus   = harness.FormatLitmus
	WriteLitmusCSV = harness.WriteLitmusCSV
)
