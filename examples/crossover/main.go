// Crossover: sweep one communication parameter at a time (the paper's
// Figure 5) for one application and find where the HLRC/SC protocol
// choice flips — "these data show the points where crossovers in
// protocol performance might happen."
package main

import (
	"flag"
	"fmt"
	"log"

	"swsm"
)

func main() {
	app := flag.String("app", "raytrace", "application")
	procs := flag.Int("procs", 16, "processor count")
	flag.Parse()

	pts, err := swsm.Figure5(*app, swsm.Base, *procs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Single-parameter communication sweeps for %s (%d procs)\n", *app, *procs)
	fmt.Println("speedups at cost x0, x1/2, x1 (base) and x2 of the achievable value:")
	fmt.Println(swsm.FormatFigure5(pts))

	// Crossover analysis: for each parameter and factor, who wins?
	type key struct{ param, factor string }
	table := map[key]map[swsm.ProtocolKind]float64{}
	var params, factors []string
	seenP := map[string]bool{}
	seenF := map[string]bool{}
	for _, p := range pts {
		k := key{p.Param, p.Factor}
		if table[k] == nil {
			table[k] = map[swsm.ProtocolKind]float64{}
		}
		table[k][p.Proto] = p.Speedup
		if !seenP[p.Param] {
			seenP[p.Param] = true
			params = append(params, p.Param)
		}
		if !seenF[p.Factor] {
			seenF[p.Factor] = true
			factors = append(factors, p.Factor)
		}
	}
	fmt.Println("protocol winner by parameter setting (H=HLRC, S=SC, ==tie):")
	for _, param := range params {
		fmt.Printf("  %-10s", param)
		for _, f := range factors {
			v := table[key{param, f}]
			h, s := v[swsm.HLRC], v[swsm.SC]
			w := "=="
			switch {
			case h > s*1.02:
				w = "H"
			case s > h*1.02:
				w = "S"
			}
			fmt.Printf("  x%-3s:%-2s", f, w)
		}
		fmt.Println()
	}
}
