// Protocols: compare HLRC and SC head to head on one application with
// full execution-time breakdowns and protocol event counts — the data
// behind the paper's Section 4.1 base-architecture comparison.
package main

import (
	"flag"
	"fmt"
	"log"

	"swsm"
	"swsm/internal/stats"
)

func main() {
	app := flag.String("app", "barnes", "application")
	procs := flag.Int("procs", 16, "processor count")
	commSet := flag.String("comm", "A", "communication set: A, B, H, W, B+")
	costSet := flag.String("costs", "O", "protocol cost set: O, H, B")
	flag.Parse()

	seq, err := swsm.SequentialBaseline(*app, swsm.Base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, %d procs, config %s%s (sequential: %d cycles)\n\n",
		*app, *procs, *commSet, *costSet, seq)

	for _, prot := range []swsm.ProtocolKind{swsm.HLRC, swsm.SC} {
		spec := swsm.DefaultSpec(*app, prot)
		spec.Procs = *procs
		lc := swsm.LayerConfig{Comm: *commSet, Costs: *costSet}
		if err := lc.Apply(&spec); err != nil {
			log.Fatal(err)
		}
		res, err := swsm.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		st := res.Stats
		totalPct, diffPct, handlerPct := st.ProtocolPercent()
		fmt.Printf("%-5s speedup %.2f (%d cycles)\n", prot, float64(seq)/float64(res.Cycles), res.Cycles)
		fmt.Printf("      breakdown: %s\n", st.BreakdownString())
		fmt.Printf("      protocol:  %.1f%% of time (diff %.1f%%, handler %.1f%%)\n",
			totalPct, diffPct, handlerPct)
		fmt.Printf("      traffic:   %d msgs, %.1f KB, %d page fetches, %d block fetches\n",
			st.TotalCount(stats.MsgsSent),
			float64(st.TotalCount(stats.BytesSent))/1024,
			st.TotalCount(stats.PageFetches),
			st.TotalCount(stats.BlockFetches))
		fmt.Printf("      sync:      %d lock acquires, lock wait imbalance %.2fx\n\n",
			st.TotalCount(stats.LockAcquires), st.Imbalance(stats.LockWait))
	}
}
