// Layers: the paper's central experiment on one application — vary the
// three layers (application structure, protocol costs, communication
// costs) individually and together, and print the synergy analysis of
// Section 4.5: how much each layer helps alone, and how much more it
// helps once another layer has already been improved.
package main

import (
	"flag"
	"fmt"
	"log"

	"swsm"
)

func main() {
	app := flag.String("app", "ocean", "application with a restructured variant (barnes, ocean, radix, volrend)")
	procs := flag.Int("procs", 16, "processor count")
	flag.Parse()

	info, err := swsm.AppLookup(*app)
	if err != nil {
		log.Fatal(err)
	}
	if info.RestructuredOf != "" {
		log.Fatalf("pass the original application, not the restructured variant %q", *app)
	}
	restructured := ""
	for _, name := range swsm.Apps() {
		i, _ := swsm.AppLookup(name)
		if i.RestructuredOf == *app {
			restructured = name
		}
	}
	if restructured == "" {
		log.Fatalf("%s has no restructured variant; try barnes, ocean, radix or volrend", *app)
	}

	seq, err := swsm.SequentialBaseline(*app, swsm.Base)
	if err != nil {
		log.Fatal(err)
	}
	speedup := func(appName string, lc swsm.LayerConfig) float64 {
		spec := swsm.DefaultSpec(appName, swsm.HLRC)
		spec.Procs = *procs
		if err := lc.Apply(&spec); err != nil {
			log.Fatal(err)
		}
		res, err := swsm.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		return float64(seq) / float64(res.Cycles)
	}

	configs := []swsm.LayerConfig{
		{Comm: "A", Costs: "O"}, {Comm: "A", Costs: "B"}, {Comm: "B", Costs: "O"},
		{Comm: "H", Costs: "O"}, {Comm: "H", Costs: "B"}, {Comm: "B", Costs: "B"},
	}
	orig := map[string]float64{}
	rest := map[string]float64{}
	for _, lc := range configs {
		orig[lc.Label()] = speedup(*app, lc)
		rest[lc.Label()] = speedup(restructured, lc)
	}

	fmt.Printf("HLRC layer study: %s (original) vs %s (restructured), %d procs\n\n",
		*app, restructured, *procs)
	fmt.Printf("%-14s", "config")
	for _, lc := range configs {
		fmt.Printf("%8s", lc.Label())
	}
	fmt.Printf("\n%-14s", *app)
	for _, lc := range configs {
		fmt.Printf("%8.2f", orig[lc.Label()])
	}
	fmt.Printf("\n%-14s", restructured)
	for _, lc := range configs {
		fmt.Printf("%8.2f", rest[lc.Label()])
	}
	fmt.Println()

	gain := func(a, b float64) float64 { return (b - a) / a * 100 }
	fmt.Println("\nSynergy between the system layers (original application):")
	fmt.Printf("  protocol idealized at achievable comm (AO->AB): %+.0f%%\n", gain(orig["AO"], orig["AB"]))
	fmt.Printf("  protocol idealized at best comm       (BO->BB): %+.0f%%\n", gain(orig["BO"], orig["BB"]))
	fmt.Printf("  comm idealized at original protocol   (AO->BO): %+.0f%%\n", gain(orig["AO"], orig["BO"]))
	fmt.Printf("  comm idealized at best protocol       (AB->BB): %+.0f%%\n", gain(orig["AB"], orig["BB"]))
	fmt.Printf("  halfway comm alone                    (AO->HO): %+.0f%%\n", gain(orig["AO"], orig["HO"]))
	fmt.Printf("  protocol on top of halfway comm       (HO->HB): %+.0f%%\n", gain(orig["HO"], orig["HB"]))

	fmt.Println("\nApplication layer (restructuring) against system-layer state:")
	for _, lc := range []string{"AO", "BO", "BB"} {
		fmt.Printf("  at %-3s restructuring gains %+.0f%%\n", lc, gain(orig[lc], rest[lc]))
	}
}
