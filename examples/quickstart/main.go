// Quickstart: write a small parallel program against the simulated
// shared address space and run it under all three machines — ideal
// (hardware-coherent), page-based HLRC, and fine-grained SC — printing
// the execution time and breakdown of each.
//
// The program is a toy stencil: each processor owns a strip of a vector,
// relaxes it a few times (reading neighbour halo elements), and
// accumulates a global checksum under a lock.
package main

import (
	"fmt"
	"log"

	"swsm"
	"swsm/internal/stats"
)

const (
	n     = 4096 // vector elements
	iters = 4
	procs = 8
)

// build constructs one machine of the requested kind.
func build(kind string) *swsm.Machine {
	cfg := swsm.MachineDefaults()
	cfg.Procs = procs
	cfg.MemLimit = 8 << 20
	switch kind {
	case "ideal":
		return swsm.NewIdealMachine(cfg)
	case "hlrc":
		return swsm.NewHLRCMachine(cfg)
	case "sc":
		return swsm.NewSCMachine(cfg, 64)
	}
	panic("unknown kind " + kind)
}

func main() {
	for _, kind := range []string{"ideal", "hlrc", "sc"} {
		m := build(kind)

		// Double-buffered so the stencil is data-race-free: every
		// iteration reads buf[cur] and writes buf[1-cur], with barriers
		// separating the phases (LRC requires race-free programs, just
		// like real SVM systems do).
		var buf [2]int64
		buf[0] = m.AllocPage(n * 8)
		buf[1] = m.AllocPage(n * 8)
		sum := m.AllocPage(4096)
		for i := 0; i < n; i++ {
			m.InitF64(buf[0]+int64(i)*8, float64(i%17))
		}
		// Strip placement: each processor's partition lives on its node.
		per := n / procs
		for p := 0; p < procs; p++ {
			m.Place(buf[0]+int64(p*per)*8, int64(per)*8, p)
			m.Place(buf[1]+int64(p*per)*8, int64(per)*8, p)
		}

		cycles, err := m.Run(func(t *swsm.Thread) {
			lo := t.Proc() * per
			hi := lo + per
			cur := 0
			bar := 0
			for it := 0; it < iters; it++ {
				src, dst := buf[cur], buf[1-cur]
				var local float64
				for i := lo; i < hi; i++ {
					left, right := i-1, i+1
					if left < 0 {
						left = n - 1
					}
					if right >= n {
						right = 0
					}
					v := (t.LoadF64(src+int64(left)*8) +
						t.LoadF64(src+int64(i)*8) +
						t.LoadF64(src+int64(right)*8)) / 3
					t.StoreF64(dst+int64(i)*8, v)
					local += v
					t.Compute(8) // index arithmetic
				}
				// Global checksum under a lock (migratory data).
				t.Acquire(1)
				t.StoreF64(sum, t.LoadF64(sum)+local)
				t.Release(1)
				t.Barrier(bar)
				bar ^= 1
				cur = 1 - cur
			}
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%-6s %10d cycles  checksum=%.3f\n", kind, cycles, m.ReadResultF64(sum))
		fmt.Printf("       breakdown: %s\n", m.Stats.BreakdownString())
		fmt.Printf("       messages:  %d sent, %d pages, %d blocks, %d diffs\n\n",
			m.Stats.TotalCount(stats.MsgsSent),
			m.Stats.TotalCount(stats.PageFetches),
			m.Stats.TotalCount(stats.BlockFetches),
			m.Stats.TotalCount(stats.DiffsCreated))
	}
}
