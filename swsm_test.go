package swsm_test

import (
	"strings"
	"testing"

	"swsm"
)

// TestPublicMachines drives the facade constructors end to end: the same
// race-free program must produce identical results on all four machines.
func TestPublicMachines(t *testing.T) {
	build := []struct {
		name string
		mk   func(swsm.MachineConfig) *swsm.Machine
	}{
		{"ideal", swsm.NewIdealMachine},
		{"hlrc", swsm.NewHLRCMachine},
		{"sc", func(c swsm.MachineConfig) *swsm.Machine { return swsm.NewSCMachine(c, 64) }},
	}
	var want uint32
	for i, b := range build {
		cfg := swsm.MachineDefaults()
		cfg.Procs = 4
		cfg.MemLimit = 4 << 20
		m := b.mk(cfg)
		ctr := m.AllocPage(4096)
		cycles, err := m.Run(func(th *swsm.Thread) {
			for k := 0; k < 5; k++ {
				th.Acquire(0)
				th.Store32(ctr, th.Load32(ctr)+1)
				th.Release(0)
			}
			th.Barrier(0)
		})
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		if cycles <= 0 {
			t.Fatalf("%s: nonpositive cycles", b.name)
		}
		got := m.ReadResultWord(ctr)
		if i == 0 {
			want = got
		}
		if got != want || got != 20 {
			t.Fatalf("%s: counter = %d, want 20", b.name, got)
		}
	}
}

func TestAppsRegistered(t *testing.T) {
	names := swsm.Apps()
	wantApps := []string{
		"barnes", "barnes-spatial", "fft", "lu", "ocean", "ocean-rowwise",
		"radix", "radix-local", "raytrace", "volrend", "volrend-rest",
		"water-nsquared", "water-spatial",
	}
	if len(names) != len(wantApps) {
		t.Fatalf("registered %v", names)
	}
	for i, w := range wantApps {
		if names[i] != w {
			t.Fatalf("apps[%d] = %s, want %s", i, names[i], w)
		}
	}
}

func TestRunSpecEndToEnd(t *testing.T) {
	spec := swsm.DefaultSpec("lu", swsm.HLRC)
	spec.Scale = swsm.Tiny
	spec.Procs = 4
	sp, res, err := swsm.Speedup(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 0 || res.Cycles <= 0 {
		t.Fatalf("speedup %f cycles %d", sp, res.Cycles)
	}
}

func TestStaticTablesRender(t *testing.T) {
	if !strings.Contains(swsm.Table1(), "water-nsquared") {
		t.Fatal("table 1 missing applications")
	}
	if !strings.Contains(swsm.Table2(), "Host overhead") {
		t.Fatal("table 2 missing parameters")
	}
	if !strings.Contains(swsm.Table3(), "Diff creation") {
		t.Fatal("table 3 missing costs")
	}
}

func TestLayerConfigLabels(t *testing.T) {
	labels := map[string]bool{}
	for _, lc := range swsm.Figure3Configs {
		labels[lc.Label()] = true
	}
	for _, want := range []string{"AO", "BB", "B+B", "WO"} {
		if !labels[want] {
			t.Fatalf("figure 3 ladder missing %s (have %v)", want, labels)
		}
	}
}

func TestParamSetAccessors(t *testing.T) {
	if swsm.CommAchievable().HostOverhead == 0 {
		t.Fatal("achievable overhead zero")
	}
	if swsm.CommBest().HostOverhead != 0 {
		t.Fatal("best overhead nonzero")
	}
	if swsm.CostsBest() != (swsm.ProtocolCosts{}) {
		t.Fatal("best costs not all-zero")
	}
}
